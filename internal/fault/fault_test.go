package fault

import (
	"testing"
	"time"
)

func TestInjectorCrash(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Crash, Rank: 1, AtOp: 2}}}
	in := p.NewInjector(4)
	for op := 0; op < 2; op++ {
		if act := in.Advance(1, false, -1); act.Crash {
			t.Fatalf("crashed early at op %d", op)
		}
	}
	if act := in.Advance(1, false, -1); !act.Crash {
		t.Fatal("no crash at op 2")
	}
	// Other ranks unaffected.
	for op := 0; op < 10; op++ {
		if act := in.Advance(0, false, -1); act.Crash {
			t.Fatal("rank 0 crashed")
		}
	}
}

func TestInjectorDropWindow(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Drop, Rank: 0, To: 2, AtOp: 1, Count: 2}}}
	in := p.NewInjector(3)
	drops := 0
	for op := 0; op < 6; op++ {
		if in.Advance(0, true, 2).Drop {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("drops = %d, want 2", drops)
	}
	// Non-send ops and other destinations never drop.
	in2 := p.NewInjector(3)
	if in2.Advance(0, false, -1).Drop {
		t.Error("non-send op dropped")
	}
	if in2.Advance(0, true, 1).Drop {
		t.Error("send to non-matching destination dropped")
	}
}

func TestInjectorDelayAndStraggle(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Delay, Rank: 0, To: -1, AtOp: 0, Count: 1, Dur: time.Millisecond},
		{Kind: Straggle, Rank: 1, AtOp: 0, Count: 3, Dur: time.Microsecond},
	}}
	in := p.NewInjector(2)
	if d := in.Advance(0, true, 1).Delay; d != time.Millisecond {
		t.Errorf("delay = %v", d)
	}
	if d := in.Advance(0, true, 1).Delay; d != 0 {
		t.Errorf("delay window leaked: %v", d)
	}
	total := time.Duration(0)
	for op := 0; op < 5; op++ {
		total += in.Advance(1, false, -1).Straggle
	}
	if total != 3*time.Microsecond {
		t.Errorf("straggle total = %v", total)
	}
	if got := in.Stragglers(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Stragglers = %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := "crash:1@6,drop:2>0@3+2,delay:0>*@1+3~150µs,slow:3@0+8~200µs"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("parsed %d events", len(p.Events))
	}
	if p.Events[1].To != 0 || p.Events[2].To != -1 {
		t.Errorf("destinations: %+v", p.Events)
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip parse: %v (string %q)", err, p.String())
	}
	for i := range p.Events {
		if back.Events[i] != p.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, back.Events[i], p.Events[i])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"boom:1@0", "crash:1", "crash:x@0", "drop:0>-2@0",
		"slow:1@0+4", // straggler without a duration
		"crash:1@-3",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || !p.Empty() {
		t.Fatalf("empty parse: %v %+v", err, p)
	}
}

func TestChaosDeterministicAndBounded(t *testing.T) {
	a := Chaos(42, 8, 20)
	b := Chaos(42, 8, 20)
	if a.String() != b.String() {
		t.Fatal("chaos generator is not deterministic in seed")
	}
	if c := Chaos(43, 8, 20); c.String() == a.String() {
		t.Error("different seeds produced identical plans")
	}
	crashed := map[int]bool{}
	for _, ev := range a.Events {
		if ev.Kind == Crash {
			crashed[ev.Rank] = true
			if ev.Rank == 0 {
				t.Error("chaos crashed rank 0")
			}
		}
	}
	if len(crashed) > 3 { // (8-1)/2
		t.Errorf("chaos crashed %d of 8 ranks", len(crashed))
	}
}

func TestInjectorIgnoresOutOfRangeRanks(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Crash, Rank: 9, AtOp: 0}}}
	in := p.NewInjector(2)
	if in.Advance(1, false, -1).Crash {
		t.Error("out-of-range event applied")
	}
}
