package fault

import (
	"strings"
	"testing"
	"time"
)

func TestInjectorCrash(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Crash, Rank: 1, AtOp: 2}}}
	in := p.NewInjector(4)
	for op := 0; op < 2; op++ {
		if act := in.Advance(1, false, -1); act.Crash {
			t.Fatalf("crashed early at op %d", op)
		}
	}
	if act := in.Advance(1, false, -1); !act.Crash {
		t.Fatal("no crash at op 2")
	}
	// Other ranks unaffected.
	for op := 0; op < 10; op++ {
		if act := in.Advance(0, false, -1); act.Crash {
			t.Fatal("rank 0 crashed")
		}
	}
}

func TestInjectorDropWindow(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Drop, Rank: 0, To: 2, AtOp: 1, Count: 2}}}
	in := p.NewInjector(3)
	drops := 0
	for op := 0; op < 6; op++ {
		if in.Advance(0, true, 2).Drop {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("drops = %d, want 2", drops)
	}
	// Non-send ops and other destinations never drop.
	in2 := p.NewInjector(3)
	if in2.Advance(0, false, -1).Drop {
		t.Error("non-send op dropped")
	}
	if in2.Advance(0, true, 1).Drop {
		t.Error("send to non-matching destination dropped")
	}
}

func TestInjectorDelayAndStraggle(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Delay, Rank: 0, To: -1, AtOp: 0, Count: 1, Dur: time.Millisecond},
		{Kind: Straggle, Rank: 1, AtOp: 0, Count: 3, Dur: time.Microsecond},
	}}
	in := p.NewInjector(2)
	if d := in.Advance(0, true, 1).Delay; d != time.Millisecond {
		t.Errorf("delay = %v", d)
	}
	if d := in.Advance(0, true, 1).Delay; d != 0 {
		t.Errorf("delay window leaked: %v", d)
	}
	total := time.Duration(0)
	for op := 0; op < 5; op++ {
		total += in.Advance(1, false, -1).Straggle
	}
	if total != 3*time.Microsecond {
		t.Errorf("straggle total = %v", total)
	}
	if got := in.Stragglers(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Stragglers = %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := "crash:1@6,drop:2>0@3+2,delay:0>*@1+3~150µs,slow:3@0+8~200µs"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("parsed %d events", len(p.Events))
	}
	if p.Events[1].To != 0 || p.Events[2].To != -1 {
		t.Errorf("destinations: %+v", p.Events)
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip parse: %v (string %q)", err, p.String())
	}
	for i := range p.Events {
		if back.Events[i] != p.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, back.Events[i], p.Events[i])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"boom:1@0", "crash:1", "crash:x@0", "drop:0>-2@0",
		"slow:1@0+4", // straggler without a duration
		"crash:1@-3",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || !p.Empty() {
		t.Fatalf("empty parse: %v %+v", err, p)
	}
}

func TestChaosDeterministicAndBounded(t *testing.T) {
	a := Chaos(42, 8, 20)
	b := Chaos(42, 8, 20)
	if a.String() != b.String() {
		t.Fatal("chaos generator is not deterministic in seed")
	}
	if c := Chaos(43, 8, 20); c.String() == a.String() {
		t.Error("different seeds produced identical plans")
	}
	crashed := map[int]bool{}
	for _, ev := range a.Events {
		if ev.Kind == Crash {
			crashed[ev.Rank] = true
			if ev.Rank == 0 {
				t.Error("chaos crashed rank 0")
			}
		}
	}
	if len(crashed) > 3 { // (8-1)/2
		t.Errorf("chaos crashed %d of 8 ranks", len(crashed))
	}
}

func TestInjectorIgnoresOutOfRangeRanks(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Crash, Rank: 9, AtOp: 0}}}
	in := p.NewInjector(2)
	if in.Advance(1, false, -1).Crash {
		t.Error("out-of-range event applied")
	}
}

func TestInjectorCorrupt(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Corrupt, Rank: 1, AtOp: 2, Count: 2}}}
	in := p.NewInjector(3)
	hits := 0
	for op := 0; op < 6; op++ {
		if in.Advance(1, false, -1).Corrupt {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("corrupt fired %d times, want 2 (the Count window)", hits)
	}
	in2 := p.NewInjector(3)
	for op := 0; op < 6; op++ {
		if in2.Advance(0, false, -1).Corrupt {
			t.Fatal("corrupt leaked to another rank")
		}
	}
}

func TestParseCorruptRoundTrip(t *testing.T) {
	p, err := Parse("corrupt:2@5+3")
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Events[0]
	if ev.Kind != Corrupt || ev.Rank != 2 || ev.AtOp != 5 || ev.Count != 3 {
		t.Fatalf("parsed %+v", ev)
	}
	back, err := Parse(p.String())
	if err != nil || back.Events[0] != ev {
		t.Fatalf("round trip: %v %+v", err, back)
	}
}

func TestParseErrorsNameTheToken(t *testing.T) {
	// Satellite contract: every parse error names the offending token so
	// a long -faults string is debuggable from the message alone.
	for _, tc := range []struct{ src, wantSub string }{
		{"crash:1@zz", `"crash:1@zz"`},
		{"boom:1@0", `"boom:1@0"`},
		{"drop:0>x@1", `"drop:0>x@1"`},
		{"crash:abc@0", `"crash:abc@0"`},
		{"delay:0>1@2+0~1ms", `"delay:0>1@2+0~1ms"`},
		{"slow:1@0+4~nope", `"slow:1@0+4~nope"`},
	} {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q does not name the token %s", tc.src, err, tc.wantSub)
		}
	}
}

func TestParseRejectsDuplicatePlans(t *testing.T) {
	// Two events of the same kind for the same rank/destination/op are a
	// spec bug, not a schedule: reject with both tokens named.
	if _, err := Parse("crash:1@4,crash:1@4"); err == nil {
		t.Error("duplicate crash accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("error %q does not say duplicate", err)
	}
	if _, err := Parse("drop:0>2@3+1,drop:0>2@3+5"); err == nil {
		t.Error("duplicate drop (same rank/dest/op, different count) accepted")
	}
	// Same op, different destination or kind: legal.
	for _, ok := range []string{
		"drop:0>2@3+1,drop:0>1@3+1",
		"crash:1@4,slow:1@4+2~1ms",
		"crash:1@4,crash:2@4",
	} {
		if _, err := Parse(ok); err != nil {
			t.Errorf("Parse(%q) rejected: %v", ok, err)
		}
	}
}

func TestChaosWithCorruption(t *testing.T) {
	a := ChaosWithCorruption(7, 6, 40)
	b := ChaosWithCorruption(7, 6, 40)
	if a.String() != b.String() {
		t.Fatal("ChaosWithCorruption is not deterministic in seed")
	}
	// The base Chaos stream must be unchanged by the new kind: existing
	// seeded plans keep their historical alignment.
	if Chaos(7, 6, 40).String() == a.String() {
		t.Error("corruption generator produced the plain chaos plan")
	}
	sawCorrupt := false
	for _, ev := range a.Events {
		if ev.Kind == Corrupt {
			sawCorrupt = true
			if ev.Count < 1 {
				t.Errorf("corrupt event without a window: %+v", ev)
			}
		}
		if ev.Kind == Crash && ev.Rank == 0 {
			t.Error("chaos crashed rank 0")
		}
	}
	if !sawCorrupt {
		t.Error("40-event corruption chaos produced no corrupt events")
	}
}
