// Package fault provides a deterministic, replayable fault model for the
// simulated cluster runtime: a Plan is a seeded list of injected events
// (rank crashes, message drops, message delays, straggler slowdowns) that
// internal/simmpi consults at every communication operation. Events
// trigger on per-rank operation counters, never on wall-clock time, so a
// plan replays identically on every run of an SPMD driver — the property
// the chaos tests and the -faults replay flag of cmd/clustersim rely on.
//
// The package knows nothing about simmpi; simmpi imports fault and asks
// the Injector what to do at each operation.
package fault

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Kind is the type of an injected fault event.
type Kind uint8

const (
	// Crash kills the rank at its AtOp-th communication operation: the
	// rank stops executing and never contributes again.
	Crash Kind = iota
	// Drop discards Count consecutive point-to-point send attempts from
	// Rank (to To, or to anyone when To < 0) starting at op AtOp. The
	// sender observes an error and may retry; a retry is a fresh attempt
	// that consumes the next slot of the window.
	Drop
	// Delay stalls Count matching send attempts by Dur each (modeled in
	// full in the traffic statistics; the real in-process sleep is capped
	// so tests stay fast).
	Delay
	// Straggle slows the rank down: every operation in [AtOp, AtOp+Count)
	// stalls by Dur, emulating a rank pinned on an oversubscribed or
	// thermally-throttled node.
	Straggle
	// Corrupt flips bits in the payload Rank publishes at the affected
	// operations (sends and collective contributions; operations without a
	// payload are unaffected). The runtime checksums payloads under
	// injection, so corruption is always *detected* — this kind tests the
	// detection/retransmit machinery, not silent data loss.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Straggle:
		return "slow"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Event is one injected fault.
type Event struct {
	Kind Kind
	// Rank is the acting rank (the sender for Drop/Delay).
	Rank int
	// To filters the destination for Drop/Delay; -1 matches any.
	To int
	// AtOp is the first affected operation index of Rank's per-rank
	// operation counter.
	AtOp int64
	// Count is the number of affected operations (Drop/Delay/Straggle);
	// values < 1 are treated as 1. Ignored for Crash.
	Count int64
	// Dur is the injected per-operation latency (Delay/Straggle).
	Dur time.Duration
}

// Plan is a replayable fault schedule.
type Plan struct {
	// Seed records the chaos-generator seed the plan came from (0 for
	// hand-written plans); it is provenance only — replay needs nothing
	// but Events.
	Seed   int64
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Chaos generates a random-but-reproducible plan for a world of the given
// size: n events drawn from all four kinds. Rank 0 and at least half the
// ranks are never crashed, so every run retains survivors able to heal or
// degrade (killing everything is a different test, written by hand).
func Chaos(seed int64, ranks, n int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	maxCrashes := (ranks - 1) / 2
	crashes := 0
	for i := 0; i < n; i++ {
		kind := Kind(rng.Intn(4))
		if kind == Crash && (crashes >= maxCrashes || ranks < 2) {
			kind = Straggle
		}
		ev := Event{Kind: kind, To: -1}
		switch kind {
		case Crash:
			// Spare rank 0: it is the output/coordination rank of the
			// drivers and its failover is exercised by dedicated tests.
			ev.Rank = 1 + rng.Intn(ranks-1)
			ev.AtOp = int64(rng.Intn(12))
			crashes++
		case Drop:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(8))
			ev.Count = int64(1 + rng.Intn(3))
		case Delay:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(8))
			ev.Count = int64(1 + rng.Intn(3))
			ev.Dur = time.Duration(50+rng.Intn(500)) * time.Microsecond
		case Straggle:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(4))
			ev.Count = int64(4 + rng.Intn(16))
			ev.Dur = time.Duration(20+rng.Intn(200)) * time.Microsecond
		}
		p.Events = append(p.Events, ev)
	}
	return p
}

// ChaosWithCorruption is Chaos with Corrupt events mixed into the draw.
// It is a separate generator on purpose: extending Chaos's kind range
// would shift every subsequent rng draw and silently change all existing
// seeded plans the chaos tests and replay flags depend on.
func ChaosWithCorruption(seed int64, ranks, n int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	maxCrashes := (ranks - 1) / 2
	crashes := 0
	for i := 0; i < n; i++ {
		kind := Kind(rng.Intn(5))
		if kind == Crash && (crashes >= maxCrashes || ranks < 2) {
			kind = Straggle
		}
		ev := Event{Kind: kind, To: -1}
		switch kind {
		case Crash:
			ev.Rank = 1 + rng.Intn(ranks-1)
			ev.AtOp = int64(rng.Intn(12))
			crashes++
		case Drop:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(8))
			ev.Count = int64(1 + rng.Intn(3))
		case Delay:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(8))
			ev.Count = int64(1 + rng.Intn(3))
			ev.Dur = time.Duration(50+rng.Intn(500)) * time.Microsecond
		case Straggle:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(4))
			ev.Count = int64(4 + rng.Intn(16))
			ev.Dur = time.Duration(20+rng.Intn(200)) * time.Microsecond
		case Corrupt:
			ev.Rank = rng.Intn(ranks)
			ev.AtOp = int64(rng.Intn(10))
			ev.Count = int64(1 + rng.Intn(2))
		}
		p.Events = append(p.Events, ev)
	}
	return p
}

// Action is the injector's verdict for one operation.
type Action struct {
	// Crash: the rank must die now.
	Crash bool
	// Drop: the send attempt is lost in transit.
	Drop bool
	// Corrupt: the payload this rank publishes at this operation is
	// bit-flipped in transit.
	Corrupt bool
	// Delay is injected wire latency for this send.
	Delay time.Duration
	// Straggle is injected compute slowdown for this operation.
	Straggle time.Duration
}

// Injector is the mutable per-run state of a plan: per-rank operation
// counters plus the event windows. Safe for concurrent use by the rank
// goroutines (state is sharded per rank).
type Injector struct {
	ranks []rankState
}

type rankState struct {
	mu      sync.Mutex
	op      int64
	crashAt int64 // earliest crash op; -1 = never
	windows []window
}

type window struct {
	kind  Kind
	to    int
	at    int64
	count int64
	dur   time.Duration
}

// NewInjector compiles the plan for a world of `ranks` ranks. Events
// naming out-of-range ranks are ignored (a plan written for a larger
// world replays harmlessly on a smaller one).
func (p *Plan) NewInjector(ranks int) *Injector {
	in := &Injector{ranks: make([]rankState, ranks)}
	for i := range in.ranks {
		in.ranks[i].crashAt = -1
	}
	if p == nil {
		return in
	}
	for _, ev := range p.Events {
		if ev.Rank < 0 || ev.Rank >= ranks {
			continue
		}
		rs := &in.ranks[ev.Rank]
		if ev.Kind == Crash {
			if rs.crashAt < 0 || ev.AtOp < rs.crashAt {
				rs.crashAt = ev.AtOp
			}
			continue
		}
		count := ev.Count
		if count < 1 {
			count = 1
		}
		rs.windows = append(rs.windows, window{
			kind: ev.Kind, to: ev.To, at: ev.AtOp, count: count, dur: ev.Dur,
		})
	}
	return in
}

// Advance consumes one operation slot for rank and returns the injected
// faults for it. send marks point-to-point send attempts (the only ops
// Drop/Delay windows apply to); to is the destination rank, or -1.
func (in *Injector) Advance(rank int, send bool, to int) Action {
	if in == nil || rank < 0 || rank >= len(in.ranks) {
		return Action{}
	}
	rs := &in.ranks[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	op := rs.op
	rs.op++
	var act Action
	if rs.crashAt >= 0 && op >= rs.crashAt {
		act.Crash = true
	}
	for i := range rs.windows {
		w := &rs.windows[i]
		if op < w.at || op >= w.at+w.count {
			continue
		}
		switch w.kind {
		case Drop:
			if send && (w.to < 0 || w.to == to) {
				act.Drop = true
			}
		case Delay:
			if send && (w.to < 0 || w.to == to) {
				act.Delay += w.dur
			}
		case Straggle:
			act.Straggle += w.dur
		case Corrupt:
			act.Corrupt = true
		}
	}
	return act
}

// Stragglers returns the ranks with at least one Straggle window — the
// oracle half of straggler detection that the health view exposes.
func (in *Injector) Stragglers() []int {
	if in == nil {
		return nil
	}
	var out []int
	for r := range in.ranks {
		for _, w := range in.ranks[r].windows {
			if w.kind == Straggle {
				out = append(out, r)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}
