package obs

import "testing"

// TestCounterSnapshotRoundTrip checks the resume identity the checkpoint
// layer depends on: doing the first half of the work, snapshotting, and
// replaying the snapshot plus the second half on a fresh recorder must
// produce the same Summary as one uninterrupted recorder.
func TestCounterSnapshotRoundTrip(t *testing.T) {
	firstHalf := func(r *Recorder) {
		r.Count("pairs", 10)
		r.Observe("redo.iterations", 0)
		r.Observe("redo.iterations", 3)
		sp := r.StartSpan(0, "phase-1")
		sp.End()
	}
	secondHalf := func(r *Recorder) {
		r.Count("pairs", 7)
		r.Count("drops", 1)
		r.Observe("redo.iterations", 1)
		sp := r.StartSpan(0, "phase-2")
		sp.End()
	}

	full := NewRecorder(nil)
	rootF := full.StartSpan(0, "rank")
	firstHalf(full)
	secondHalf(full)
	rootF.End()

	interrupted := NewRecorder(nil)
	rootI := interrupted.StartSpan(0, "rank")
	firstHalf(interrupted)
	snap := interrupted.CounterSnapshot()
	rootI.End()

	// The open rank root must NOT be in the snapshot: the resumed run
	// opens its own.
	if n := snap.SpanCounts["rank"]; n != 0 {
		t.Fatalf("snapshot counted %d open rank spans, want 0", n)
	}
	if n := snap.SpanCounts["phase-1"]; n != 1 {
		t.Fatalf("snapshot phase-1 spans = %d, want 1", n)
	}

	resumed := NewRecorder(nil)
	resumed.RestoreCounterSnapshot(snap)
	rootR := resumed.StartSpan(0, "rank")
	secondHalf(resumed)
	rootR.End()

	if got, want := resumed.Summary(), full.Summary(); got != want {
		t.Errorf("resumed summary differs from uninterrupted:\n--- resumed\n%s--- full\n%s", got, want)
	}
}

// TestCounterSnapshotNilSafety pins the nil contracts.
func TestCounterSnapshotNilSafety(t *testing.T) {
	var nilRec *Recorder
	if nilRec.CounterSnapshot() != nil {
		t.Error("nil recorder snapshot should be nil")
	}
	nilRec.RestoreCounterSnapshot(&CounterSnapshot{})
	r := NewRecorder(nil)
	r.RestoreCounterSnapshot(nil)
	if s := r.Summary(); s != "" {
		t.Errorf("restore(nil) dirtied the recorder: %q", s)
	}
}
