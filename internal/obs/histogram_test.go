package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4},
		{1024, 10}, {1025, 11},
		{1 << 40, 40},
		{1<<62 + 5, histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucketIndex(c.v); got != c.want {
			t.Errorf("histBucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		// The defining property: v fits under its bucket's bound, and (for
		// v > 1) not under the previous bucket's.
		i := histBucketIndex(c.v)
		if c.v > histUpperBound(i) && i < histBuckets-1 {
			t.Errorf("v=%d above its bucket bound %d", c.v, histUpperBound(i))
		}
		if i > 0 && c.v <= histUpperBound(i-1) {
			t.Errorf("v=%d fits bucket %d, placed in %d", c.v, i-1, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	if h.quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 observations of value 1..100: p50 covers rank 50 (value 50,
	// bucket bound 64), p99 rank 99 (bound 128).
	for v := int64(1); v <= 100; v++ {
		h.observe(v)
	}
	if got := h.quantile(0.50); got != 64 {
		t.Errorf("p50 = %d, want 64", got)
	}
	if got := h.quantile(0.90); got != 128 {
		t.Errorf("p90 = %d, want 128", got)
	}
	if got := h.quantile(0.99); got != 128 {
		t.Errorf("p99 = %d, want 128", got)
	}
	if h.count != 100 || h.sum != 5050 {
		t.Errorf("count=%d sum=%d, want 100/5050", h.count, h.sum)
	}
}

// TestObserveDeterministicAcrossOrder pins the histogram determinism
// contract: the rendered summary depends only on the multiset of
// observed values, not the order they arrived in.
func TestObserveDeterministicAcrossOrder(t *testing.T) {
	build := func(values []int64) string {
		r, _ := newTestRecorder()
		r.SetLabel("h")
		for _, v := range values {
			r.Observe("pairs.split", v)
		}
		return r.Summary()
	}
	a := build([]int64{1, 900, 17, 17, 4096, 33})
	b := build([]int64{4096, 17, 33, 1, 17, 900})
	if a != b {
		t.Errorf("summaries differ by observation order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "hist pairs.split count=6 ") {
		t.Errorf("summary lacks hist line:\n%s", a)
	}
}

func TestGaugeHistogramsStayOutOfSummary(t *testing.T) {
	r, _ := newTestRecorder()
	r.Observe("workload.sizes", 10)
	r.ObserveGauge("span.phase.us", 1234)
	s := r.Summary()
	if !strings.Contains(s, "hist workload.sizes ") {
		t.Errorf("counter-side hist missing from summary:\n%s", s)
	}
	if strings.Contains(s, "span.phase.us") {
		t.Errorf("gauge-side hist leaked into the deterministic summary:\n%s", s)
	}
	// Both sides are visible to the JSON exporter.
	if len(r.Histograms()) != 1 || len(r.GaugeHistograms()) != 1 {
		t.Errorf("snapshot counts: %d counter-side, %d gauge-side, want 1/1",
			len(r.Histograms()), len(r.GaugeHistograms()))
	}
}

func TestSpanDurationsFeedGaugeHistograms(t *testing.T) {
	r, _ := newTestRecorder()
	for i := 0; i < 3; i++ {
		sp := r.StartSpan(0, "phase")
		sp.End()
	}
	hs := r.GaugeHistograms()
	if len(hs) != 1 || hs[0].Name != "span.phase.us" {
		t.Fatalf("gauge hists = %+v, want one span.phase.us", hs)
	}
	if hs[0].Count != 3 {
		t.Errorf("span duration observations: %d, want 3", hs[0].Count)
	}
	if hs[0].Sum <= 0 {
		t.Errorf("span duration sum %d, want > 0 (fake clock ticks)", hs[0].Sum)
	}
}

func TestHistogramJSONInvariants(t *testing.T) {
	r, _ := newTestRecorder()
	for _, v := range []int64{1, 1, 5, 900, 900, 900, 1 << 30} {
		r.Observe("x", v)
	}
	r.ObserveGauge("g", 7)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Hists []struct {
			Name    string `json:"name"`
			Count   int64  `json:"count"`
			P50     int64  `json:"p50"`
			P90     int64  `json:"p90"`
			P99     int64  `json:"p99"`
			Buckets []struct {
				Le    int64 `json:"le"`
				Count int64 `json:"count"`
			} `json:"buckets"`
		} `json:"hists"`
		GaugeH []json.RawMessage `json:"gauge_hists"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.Hists) != 1 || len(doc.GaugeH) != 1 {
		t.Fatalf("hists=%d gauge_hists=%d, want 1/1", len(doc.Hists), len(doc.GaugeH))
	}
	h := doc.Hists[0]
	if h.Name != "x" || h.Count != 7 {
		t.Errorf("hist = %+v", h)
	}
	sum := int64(0)
	prev := int64(-1)
	for _, b := range h.Buckets {
		if b.Le <= prev {
			t.Errorf("bucket bounds not strictly increasing: %d after %d", b.Le, prev)
		}
		prev = b.Le
		sum += b.Count
	}
	if sum != h.Count {
		t.Errorf("bucket counts sum to %d, total %d", sum, h.Count)
	}
	if h.P50 > h.P90 || h.P90 > h.P99 {
		t.Errorf("quantiles out of order: p50=%d p90=%d p99=%d", h.P50, h.P90, h.P99)
	}
}

func TestNilRecorderHistogramsInert(t *testing.T) {
	var r *Recorder
	r.Observe("a", 1)
	r.ObserveGauge("b", 2)
	if r.Histograms() != nil || r.GaugeHistograms() != nil {
		t.Error("nil recorder returned histogram state")
	}
}

func TestWritePrometheus(t *testing.T) {
	r, _ := newTestRecorder()
	r.SetLabel(`lay"out\1`)
	r.Count("comm.allreduce.calls", 3)
	r.Gauge("run.wall_us", 42)
	r.Observe("pairs.split", 2)
	r.Observe("pairs.split", 900)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gbpolar_comm_allreduce_calls counter\n",
		`gbpolar_comm_allreduce_calls{run="lay\"out\\1"} 3` + "\n",
		"# TYPE gbpolar_run_wall_us gauge\n",
		"# TYPE gbpolar_pairs_split histogram\n",
		`le="2"} 1` + "\n",
		`le="1024"} 2` + "\n", // cumulative: 900's bucket includes the 2
		`le="+Inf"} 2` + "\n",
		"gbpolar_pairs_split_sum",
		"gbpolar_pairs_split_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output lacks %q:\n%s", want, out)
		}
	}
	// The exposition must render identically on repeat.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, r, nil); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("prometheus rendering not deterministic for fixed state")
	}
}
