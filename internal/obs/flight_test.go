package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestFlightRingBounded(t *testing.T) {
	r, _ := newTestRecorder()
	for i := 0; i < flightCap+10; i++ {
		r.Event(2, "fault", fmt.Sprintf("ev-%d", i))
	}
	dump := r.FlightDump()
	want := fmt.Sprintf("rank 2: last %d of %d events", flightCap, flightCap+10)
	if !strings.Contains(dump, want) {
		t.Errorf("dump lacks %q:\n%s", want, dump)
	}
	// Oldest entries evicted, newest retained, oldest-first order.
	if strings.Contains(dump, "ev-9\n") {
		t.Error("evicted event still in dump")
	}
	i10 := strings.Index(dump, "ev-10\n")
	iLast := strings.Index(dump, fmt.Sprintf("ev-%d\n", flightCap+9))
	if i10 < 0 || iLast < 0 || i10 > iLast {
		t.Errorf("ring order wrong (ev-10 at %d, newest at %d):\n%s", i10, iLast, dump)
	}
}

func TestFlightDumpDeterministicAndSorted(t *testing.T) {
	build := func() string {
		r, _ := newTestRecorder()
		r.SetLabel("unit")
		sp := r.StartSpan(3, "approx-epol")
		sp.End()
		r.Event(0, "fault", "straggle")
		cs := r.StartSpan(0, "comm:allreduce")
		cs.End()
		return r.FlightDump()
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("flight dumps differ between identical runs:\n%s\nvs\n%s", a, b)
	}
	// Ranks ascending, and spans/comm recorded automatically by StartSpan.
	i0 := strings.Index(a, "rank 0:")
	i3 := strings.Index(a, "rank 3:")
	if i0 < 0 || i3 < 0 || i0 > i3 {
		t.Errorf("ranks not in ascending order:\n%s", a)
	}
	for _, want := range []string{
		"flight recorder: unit\n",
		"span  approx-epol\n",
		"fault straggle\n",
		"comm  comm:allreduce\n",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("dump lacks %q:\n%s", want, a)
		}
	}
	// No timestamps: dumps must not depend on the clock.
	if strings.Contains(a, "us") || strings.Contains(a, "ms") {
		t.Errorf("dump appears to contain timings:\n%s", a)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var r *Recorder
	r.Event(0, "fault", "x")
	if r.FlightDump() != "" {
		t.Error("nil recorder produced a flight dump")
	}
}
