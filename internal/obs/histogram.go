package obs

import "math/bits"

// Fixed log₂-bucket histograms. Bucket bounds are powers of two chosen
// once for every histogram in the project — never adapted to the data —
// so two histograms of the same workload have identical bucket layouts
// and their rendered summaries can be compared byte for byte. Bucket i
// has the inclusive upper bound 2^i: values ≤ 1 land in bucket 0 and
// the last bucket is effectively unbounded (2^62 exceeds any duration
// or byte count the project produces).
//
// Histograms come in the same two flavors as scalar metrics (see the
// package doc): Observe feeds the counter (workload) side — pair-split
// sizes, redo iterations, per-call collective payloads — and is
// rendered by the deterministic Summary; ObserveGauge feeds the
// observational side — span durations, per-worker task counts, modeled
// seconds — and is exported by WriteJSON and /metrics only. Quantiles
// are bucket upper bounds computed with integer rank arithmetic, so a
// counter-side histogram's p50/p90/p99 are as deterministic as the
// counts that produced them.

// histBuckets is the number of buckets; the last one absorbs everything
// above 2^(histBuckets-2).
const histBuckets = 63

// histogram is the internal mutable state (guarded by Recorder.mu).
type histogram struct {
	count   int64
	sum     int64
	buckets [histBuckets]int64
	// exID/exValue remember the most recent exemplar-tagged observation
	// (ObserveGaugeEx): a trace ID a /metrics scraper can pivot to from
	// an SLO latency series. Exemplars live on the observational side
	// only — Summary never renders them.
	exID    string
	exValue int64
}

// histBucketIndex returns the bucket of v: the smallest i with
// v ≤ 2^i, clamped to the last bucket. Non-positive values count in
// bucket 0 (sizes and durations are never negative; a zero is real).
func histBucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1)) // smallest i with v <= 2^i
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histUpperBound returns bucket i's inclusive upper bound.
func histUpperBound(i int) int64 {
	if i >= 62 {
		return int64(1) << 62
	}
	return int64(1) << i
}

func (h *histogram) observe(v int64) {
	h.count++
	h.sum += v
	h.buckets[histBucketIndex(v)]++
}

// quantile returns the upper bound of the bucket holding the q-th
// ranked observation (0 < q ≤ 1). Integer rank arithmetic: the rank is
// ⌈q·count⌉, so the result is a pure function of the bucket counts.
func (h *histogram) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= rank {
			return histUpperBound(i)
		}
	}
	return histUpperBound(histBuckets - 1)
}

// HistogramBucket is one non-empty bucket of an exported histogram.
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper value bound (a power of
	// two; the Prometheus "le" label).
	UpperBound int64
	// Count is the number of observations in this bucket (non-cumulative).
	Count int64
}

// HistogramRecord is an exported histogram snapshot.
type HistogramRecord struct {
	Name       string
	Count, Sum int64
	// P50/P90/P99 are bucket-upper-bound quantile estimates.
	P50, P90, P99 int64
	// Buckets holds the non-empty buckets in ascending bound order.
	Buckets []HistogramBucket
	// ExemplarID/ExemplarValue carry the most recent exemplar-tagged
	// observation (ObserveGaugeEx), empty when none was recorded.
	ExemplarID    string
	ExemplarValue int64
}

// snapshotHist renders one histogram under the recorder lock.
func snapshotHist(name string, h *histogram) HistogramRecord {
	rec := HistogramRecord{
		Name:  name,
		Count: h.count,
		Sum:   h.sum,
		P50:   h.quantile(0.50),
		P90:   h.quantile(0.90),
		P99:   h.quantile(0.99),
	}
	rec.ExemplarID, rec.ExemplarValue = h.exID, h.exValue
	for i, c := range h.buckets {
		if c > 0 {
			rec.Buckets = append(rec.Buckets, HistogramBucket{UpperBound: histUpperBound(i), Count: c})
		}
	}
	return rec
}

// Observe adds v to the named counter-side histogram: values that are a
// pure function of the workload (pair-split sizes, redo iterations,
// collective payload bytes). Counter-side histograms appear in the
// deterministic Summary with their count and p50/p90/p99.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.histInto(r.hists, name, v)
	r.mu.Unlock()
}

// ObserveGauge adds v to the named observational histogram: values that
// legitimately vary with host scheduling (span durations, per-worker
// task counts, modeled seconds). Exported by WriteJSON and /metrics,
// never by Summary.
func (r *Recorder) ObserveGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.histInto(r.gaugeHists, name, v)
	r.mu.Unlock()
}

// ObserveGaugeEx is ObserveGauge plus an exemplar: the observation is
// tagged with a trace ID, and the histogram remembers the most recent
// such pair. The SLO latency series use it so a scraped p99 spike comes
// with a concrete trace to pull up with gbtrace. An empty id degrades
// to plain ObserveGauge.
func (r *Recorder) ObserveGaugeEx(name string, v int64, traceID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.histInto(r.gaugeHists, name, v)
	if traceID != "" {
		h := r.gaugeHists[name]
		h.exID, h.exValue = traceID, v
	}
	r.mu.Unlock()
}

// histInto observes into a named histogram of the given family,
// creating it on first use. Callers hold r.mu.
func (r *Recorder) histInto(family map[string]*histogram, name string, v int64) {
	h := family[name]
	if h == nil {
		h = &histogram{}
		family[name] = h
	}
	h.observe(v)
}

// Histograms returns snapshots of the counter-side histograms sorted by
// name.
func (r *Recorder) Histograms() []HistogramRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return snapshotHists(r.hists)
}

// GaugeHistograms returns snapshots of the observational histograms
// sorted by name.
func (r *Recorder) GaugeHistograms() []HistogramRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return snapshotHists(r.gaugeHists)
}

func snapshotHists(family map[string]*histogram) []HistogramRecord {
	out := make([]HistogramRecord, 0, len(family))
	for _, name := range SortedKeys(family) {
		out = append(out, snapshotHist(name, family[name]))
	}
	return out
}
