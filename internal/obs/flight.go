package obs

import (
	"fmt"
	"strings"
)

// Flight recorder: a bounded per-rank ring of the most recent span,
// comm, and fault events. It is always on (the cost is a fixed-size
// ring per rank) so when a run comes back Degraded or a crash-plan redo
// fires, the driver can dump "what each rank was doing just before"
// without re-running with tracing enabled.
//
// The dump carries no timestamps — only event kinds, names, and
// per-rank ordering — so for a deterministic fault schedule the dump
// text is itself deterministic (asserted by the gb tests).

// flightCap is the per-rank ring capacity. 32 events cover several
// phases of lookback at the project's span granularity while keeping
// the always-on cost trivial.
const flightCap = 32

// Event kinds recorded in the flight ring.
const (
	flightSpan  = "span"
	flightComm  = "comm"
	flightFault = "fault"
)

type flightEvent struct {
	kind string
	name string
}

// flightRing is one rank's bounded event history: a circular buffer
// plus the total ever seen, so the dump can say "last 32 of 187".
type flightRing struct {
	total  int64
	events []flightEvent
	next   int
}

func (fr *flightRing) add(ev flightEvent) {
	fr.total++
	if len(fr.events) < flightCap {
		fr.events = append(fr.events, ev)
		return
	}
	fr.events[fr.next] = ev
	fr.next = (fr.next + 1) % flightCap
}

// ordered returns the ring's events oldest-first.
func (fr *flightRing) ordered() []flightEvent {
	out := make([]flightEvent, 0, len(fr.events))
	out = append(out, fr.events[fr.next:]...)
	out = append(out, fr.events[:fr.next]...)
	return out
}

// flightEvent appends an event to rank's ring. Callers hold r.mu.
func (r *Recorder) flightEvent(rank int, kind, name string) {
	fr := r.flight[rank]
	if fr == nil {
		fr = &flightRing{}
		r.flight[rank] = fr
	}
	fr.add(flightEvent{kind: kind, name: name})
}

// Event records a free-form event in rank's flight ring — the hook the
// fault machinery uses to interleave injected faults with the span and
// comm events StartSpan records automatically.
func (r *Recorder) Event(rank int, kind, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flightEvent(rank, kind, name)
	r.mu.Unlock()
}

// FlightDump renders every rank's recent-event ring as deterministic
// text: ranks in ascending order, each rank's events oldest-first, no
// timestamps.
func (r *Recorder) FlightDump() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	if r.label != "" {
		fmt.Fprintf(&b, "flight recorder: %s\n", r.label)
	} else {
		b.WriteString("flight recorder\n")
	}
	if !r.trace.IsZero() {
		fmt.Fprintf(&b, "trace %s job=%s tenant=%s attempt=%d\n",
			r.trace.TraceID, r.trace.Job, r.trace.Tenant, r.trace.Attempt)
	}
	for _, rank := range SortedKeys(r.flight) {
		fr := r.flight[rank]
		fmt.Fprintf(&b, "rank %d: last %d of %d events\n", rank, len(fr.events), fr.total)
		for _, ev := range fr.ordered() {
			fmt.Fprintf(&b, "  %-5s %s\n", ev.kind, ev.name)
		}
	}
	return b.String()
}
