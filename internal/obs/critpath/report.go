package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gbpolar/internal/obs"
)

// WriteJSON writes the report as one JSON document. encoding/json
// marshals maps in sorted key order and every slice here was built in
// sorted order, so identical reports render identical bytes —
// cmd/tracecheck -critpath validates the schema and the attribution
// invariants.
func WriteJSON(w io.Writer, rep Report) error {
	return json.NewEncoder(w).Encode(rep)
}

// WriteText renders the report as a human table. In det mode only the
// structure view is printed — phase order, comm rounds, span counts,
// all pure functions of the workload — so two same-seed crash-free runs
// render byte-identical det reports; the timing mode adds the wall
// clock attribution, the critical path, and the slowest spans.
func WriteText(w io.Writer, rep Report, det bool) error {
	var b strings.Builder
	head := "critical path"
	if det {
		head = "critical path structure"
	}
	if rep.Label != "" {
		fmt.Fprintf(&b, "%s: %s\n", head, rep.Label)
	} else {
		fmt.Fprintf(&b, "%s\n", head)
	}
	if rep.Trace != nil {
		fmt.Fprintf(&b, "trace %s job=%s tenant=%s attempt=%d\n",
			rep.Trace.TraceID, rep.Trace.Job, rep.Trace.Tenant, rep.Trace.Attempt)
	}
	fmt.Fprintf(&b, "ranks %d\n", rep.Ranks)

	if det {
		for _, rp := range rep.PhaseOrder {
			fmt.Fprintf(&b, "rank %d phases: %s\n", rp.Rank, strings.Join(rp.Phases, " "))
		}
		for _, k := range obs.SortedKeys(rep.CommRounds) {
			fmt.Fprintf(&b, "comm rounds %s %d\n", k, rep.CommRounds[k])
		}
		for _, k := range obs.SortedKeys(rep.SpanCounts) {
			fmt.Fprintf(&b, "span %s %d\n", k, rep.SpanCounts[k])
		}
		_, err := io.WriteString(w, b.String())
		return err
	}

	fmt.Fprintf(&b, "wall %d us\n", rep.WallUs)
	b.WriteString("rank  compute_us  comm_us  idle_us  slack_us\n")
	for _, lane := range rep.PerRank {
		fmt.Fprintf(&b, "%4d  %10d  %7d  %7d  %8d\n",
			lane.Rank, lane.ComputeUs, lane.CommUs, lane.IdleUs, lane.SlackUs)
	}
	if len(rep.Phases) > 0 {
		b.WriteString("phase attribution:\n")
		b.WriteString("  phase                        rank  compute_us  comm_us\n")
		for _, c := range rep.Phases {
			fmt.Fprintf(&b, "  %-27s  %4d  %10d  %7d\n", c.Phase, c.Rank, c.ComputeUs, c.CommUs)
		}
	}
	fmt.Fprintf(&b, "critical path (%d steps, compute %d us, comm %d us, comm_frac %d‰):\n",
		len(rep.Path), rep.CritComputeUs, rep.CritCommUs, rep.CommFracPermille)
	for _, st := range rep.Path {
		name := st.Name
		if st.Seq > 0 {
			name = fmt.Sprintf("%s#%d", st.Name, st.Seq)
		}
		fmt.Fprintf(&b, "  rank %d  %-7s  %-27s  %d..%d us  (%d us)\n",
			st.Rank, st.Kind, name, st.StartUs, st.EndUs, st.EndUs-st.StartUs)
	}
	if len(rep.TopSpans) > 0 {
		b.WriteString("slowest spans:\n")
		for _, ts := range rep.TopSpans {
			fmt.Fprintf(&b, "  rank %d  %-27s  %d us\n", ts.Rank, ts.Name, ts.DurUs)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
