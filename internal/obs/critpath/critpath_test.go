package critpath

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/surface"
)

func TestUnionLen(t *testing.T) {
	cases := []struct {
		ivs  []iv
		want int64
	}{
		{nil, 0},
		{[]iv{{0, 10}}, 10},
		{[]iv{{0, 10}, {5, 15}}, 15},
		{[]iv{{0, 10}, {20, 30}}, 20},
		{[]iv{{20, 30}, {0, 10}, {5, 25}}, 30},
		{[]iv{{0, 10}, {2, 8}}, 10},
	}
	for i, c := range cases {
		if got := unionLen(append([]iv{}, c.ivs...)); got != c.want {
			t.Errorf("case %d: unionLen = %d, want %d", i, got, c.want)
		}
	}
}

// synthetic two-rank run: rank 1 arrives last at the allreduce, so the
// critical path must route through rank 1's compute before the comm
// step and rank 0's compute after it.
func syntheticRun() Run {
	return Run{
		Label: "synthetic",
		Spans: []Span{
			{Rank: 0, Name: "rank", StartUs: 0, EndUs: 100, Parent: -1},
			{Rank: 1, Name: "rank", StartUs: 0, EndUs: 80, Parent: -1},
			{Rank: 0, Name: "born", StartUs: 10, EndUs: 60, Parent: 0},
			{Rank: 1, Name: "born", StartUs: 5, EndUs: 60, Parent: 1},
			{Rank: 0, Name: "comm:allreduce", StartUs: 50, EndUs: 60, Parent: 2, Seq: 1},
			{Rank: 1, Name: "comm:allreduce", StartUs: 55, EndUs: 60, Parent: 3, Seq: 1},
			{Rank: 0, Name: "epol", StartUs: 60, EndUs: 100, Parent: 0},
			{Rank: 1, Name: "epol", StartUs: 60, EndUs: 80, Parent: 1},
		},
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	rep := Analyze(syntheticRun(), 3)
	if rep.Ranks != 2 || rep.WallUs != 100 {
		t.Fatalf("ranks=%d wall=%d", rep.Ranks, rep.WallUs)
	}
	wantLanes := []RankLane{
		{Rank: 0, ComputeUs: 90, CommUs: 10, IdleUs: 0, SlackUs: 0},
		{Rank: 1, ComputeUs: 75, CommUs: 5, IdleUs: 20, SlackUs: 20},
	}
	for i, want := range wantLanes {
		if rep.PerRank[i] != want {
			t.Errorf("lane %d = %+v, want %+v", i, rep.PerRank[i], want)
		}
	}
	wantPath := []PathStep{
		{Rank: 1, Kind: "compute", Name: "compute", StartUs: 0, EndUs: 55},
		{Rank: 0, Kind: "comm", Name: "comm:allreduce", StartUs: 55, EndUs: 60, Seq: 1},
		{Rank: 0, Kind: "compute", Name: "compute", StartUs: 60, EndUs: 100},
	}
	if len(rep.Path) != len(wantPath) {
		t.Fatalf("path %+v", rep.Path)
	}
	for i, want := range wantPath {
		if rep.Path[i] != want {
			t.Errorf("step %d = %+v, want %+v", i, rep.Path[i], want)
		}
	}
	if rep.CritComputeUs != 95 || rep.CritCommUs != 5 || rep.CommFracPermille != 50 {
		t.Errorf("crit compute=%d comm=%d frac=%d", rep.CritComputeUs, rep.CritCommUs, rep.CommFracPermille)
	}
	wantCells := []PhaseCell{
		{Phase: "born", Rank: 0, ComputeUs: 40, CommUs: 10},
		{Phase: "born", Rank: 1, ComputeUs: 50, CommUs: 5},
		{Phase: "epol", Rank: 0, ComputeUs: 40, CommUs: 0},
		{Phase: "epol", Rank: 1, ComputeUs: 20, CommUs: 0},
	}
	if len(rep.Phases) != len(wantCells) {
		t.Fatalf("phases %+v", rep.Phases)
	}
	for i, want := range wantCells {
		if rep.Phases[i] != want {
			t.Errorf("cell %d = %+v, want %+v", i, rep.Phases[i], want)
		}
	}
	if len(rep.TopSpans) != 3 || rep.TopSpans[0].Name != "born" || rep.TopSpans[0].DurUs != 55 {
		t.Errorf("top spans %+v", rep.TopSpans)
	}
	if rep.CommRounds["comm:allreduce"] != 1 {
		t.Errorf("comm rounds %+v", rep.CommRounds)
	}
}

func TestAnalyzeEmptyAndSingleRank(t *testing.T) {
	rep := Analyze(Run{}, 0)
	if rep.Ranks != 0 || rep.WallUs != 0 || len(rep.Path) != 0 {
		t.Errorf("empty run: %+v", rep)
	}
	rep = Analyze(Run{Spans: []Span{
		{Rank: 0, Name: "rank", StartUs: 0, EndUs: 40, Parent: -1},
		{Rank: 0, Name: "born", StartUs: 0, EndUs: 40, Parent: 0},
	}}, 0)
	if rep.WallUs != 40 || rep.PerRank[0].ComputeUs != 40 || rep.CommFracPermille != 0 {
		t.Errorf("single rank: %+v", rep)
	}
	if len(rep.Path) != 1 || rep.Path[0].Kind != "compute" {
		t.Errorf("single-rank path: %+v", rep.Path)
	}
}

func buildSys(t *testing.T, n int) *gb.System {
	t.Helper()
	m := molecule.Globule("critpath", n, 7)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := gb.NewSystem(m, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fourRankRun(t *testing.T, label string) Run {
	t.Helper()
	s := buildSys(t, 400)
	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	rec.SetLabel(label)
	if _, err := s.Run(gb.RunSpec{Processes: 4, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	return FromRecorder(rec)
}

// TestAttributionSumsRealRun is the acceptance criterion: for a
// chaos-free 4-rank run, compute + comm + idle per rank accounts for
// the full measured wall time (exactly, which is trivially ≥ 99%).
func TestAttributionSumsRealRun(t *testing.T) {
	run := fourRankRun(t, "four-ranks")
	rep := Analyze(run, 5)
	if rep.Ranks != 4 {
		t.Fatalf("ranks = %d", rep.Ranks)
	}
	if rep.WallUs <= 0 {
		t.Fatalf("wall = %d", rep.WallUs)
	}
	for _, lane := range rep.PerRank {
		sum := lane.ComputeUs + lane.CommUs + lane.IdleUs
		if sum != rep.WallUs {
			t.Errorf("rank %d attribution %d != wall %d", lane.Rank, sum, rep.WallUs)
		}
		if lane.ComputeUs < 0 || lane.CommUs < 0 || lane.IdleUs < 0 || lane.SlackUs < 0 {
			t.Errorf("rank %d negative attribution: %+v", lane.Rank, lane)
		}
	}
	if len(rep.Path) == 0 {
		t.Error("empty critical path")
	}
	if rep.CommFracPermille < 0 || rep.CommFracPermille > 1000 {
		t.Errorf("comm_frac %d out of range", rep.CommFracPermille)
	}
	// Real collectives ran, sequenced by simmpi.
	if rep.CommRounds["comm:allreduce"] == 0 {
		t.Errorf("no sequenced allreduce rounds: %+v", rep.CommRounds)
	}
}

// TestDetReportByteIdentical: the structure view of two same-seed
// crash-free runs renders byte-identical even though their wall
// timings differ.
func TestDetReportByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteText(&a, Analyze(fourRankRun(t, "det"), 5), true); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&b, Analyze(fourRankRun(t, "det"), 5), true); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("det reports differ:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("empty det report")
	}
}

// TestChromeRoundTrip: exporting a real run to the Chrome trace format
// and re-ingesting it must preserve the span forest — same structure
// view, same per-rank attribution sums.
func TestChromeRoundTrip(t *testing.T) {
	s := buildSys(t, 300)
	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	rec.SetLabel("roundtrip")
	rec.SetTrace(obs.TraceContext{TraceID: "t-rt", Job: "j-rt", Tenant: "acme", Attempt: 1})
	if _, err := s.Run(gb.RunSpec{Processes: 3, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	direct := Analyze(FromRecorder(rec), 5)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	runs, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	if runs[0].Trace.TraceID != "t-rt" || runs[0].Trace.Tenant != "acme" {
		t.Errorf("trace identity lost: %+v", runs[0].Trace)
	}
	ingested := Analyze(runs[0], 5)
	if ingested.Ranks != direct.Ranks {
		t.Errorf("ranks %d != %d", ingested.Ranks, direct.Ranks)
	}
	if len(ingested.SpanCounts) != len(direct.SpanCounts) {
		t.Errorf("span counts differ: %+v vs %+v", ingested.SpanCounts, direct.SpanCounts)
	}
	for name, n := range direct.SpanCounts {
		if ingested.SpanCounts[name] != n {
			t.Errorf("span count %s: %d != %d", name, ingested.SpanCounts[name], n)
		}
	}
	for i, lane := range ingested.PerRank {
		if sum := lane.ComputeUs + lane.CommUs + lane.IdleUs; sum != ingested.WallUs {
			t.Errorf("ingested rank %d attribution %d != wall %d", i, sum, ingested.WallUs)
		}
	}
	// Same structure text, bit for bit.
	var dtxt, itxt bytes.Buffer
	if err := WriteText(&dtxt, direct, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&itxt, ingested, true); err != nil {
		t.Fatal(err)
	}
	if dtxt.String() != itxt.String() {
		t.Errorf("structure views differ:\n--- direct ---\n%s--- ingested ---\n%s", dtxt.String(), itxt.String())
	}
}

func TestParseObsJSON(t *testing.T) {
	rec := obs.NewRecorder(func() time.Duration { return 0 })
	rec.SetLabel("json-run")
	rec.SetTrace(obs.TraceContext{TraceID: "t-js"})
	rec.StartSpanSeq(0, "comm:barrier", 1).End()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Label != "json-run" || runs[0].Trace.TraceID != "t-js" {
		t.Fatalf("runs: %+v", runs)
	}
	if len(runs[0].Spans) != 1 || runs[0].Spans[0].Seq != 1 {
		t.Errorf("spans: %+v", runs[0].Spans)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte(`[1,2,3]`)); err == nil {
		t.Error("array accepted")
	}
	if _, err := Parse([]byte(`{"nope": 1}`)); err == nil {
		t.Error("unknown document accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestReportJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Analyze(syntheticRun(), 3)); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ranks", "wall_us", "per_rank", "phases",
		"critical_path", "comm_frac_permille", "top_spans", "phase_order",
		"comm_rounds", "span_counts"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON lacks %q", key)
		}
	}
}

func TestPublishGauges(t *testing.T) {
	rec := obs.NewRecorder(nil)
	PublishGauges(rec, Analyze(syntheticRun(), 3))
	g := rec.Gauges()
	if g["critpath.comm_frac"] != 50 {
		t.Errorf("comm_frac gauge = %d", g["critpath.comm_frac"])
	}
	if g["critpath.slack_us.rank1"] != 20 {
		t.Errorf("slack gauge = %d", g["critpath.slack_us.rank1"])
	}
	PublishGauges(nil, Report{}) // must not panic
}
