// Package critpath is the cross-rank critical-path analyzer: it takes
// the per-rank span forests of one run (straight off an obs.Recorder or
// re-ingested from the Chrome-trace/JSON exports), stitches the comm
// spans of each collective round into happens-before edges, and
// attributes the run's end-to-end wall time to {phase × rank ×
// compute/comm/idle}. The outputs are a text report, a JSON document
// (validated by cmd/tracecheck), and obs gauges (critpath.comm_frac,
// critpath.slack_us per rank).
//
// # Determinism rules
//
// The analyzer never reads a clock — every time it handles was measured
// upstream, behind the perf boundary, and arrives as integer
// microseconds. All map-derived output goes through sorted renders, and
// every tie (equal timestamps, equal durations) breaks on (rank, name,
// creation index), never on map order: the same input bytes always
// produce the same output bytes. The structure-only view (Report's
// phase order, comm rounds, span counts — what WriteText renders in det
// mode) depends only on counter-side facts, so it is byte-identical
// between two same-seed crash-free runs even though their timings
// differ.
//
// Comm stitching matches the members of one logical collective across
// ranks by (span name, seq) — simmpi tags each collective span with the
// rank's 1-based round count for that kind (obs.StartSpanSeq). Traces
// without seq tags (older exports) fall back to per-rank occurrence
// order, which is equivalent for crash-free runs.
package critpath

import (
	"fmt"
	"slices"
	"strings"

	"gbpolar/internal/obs"
)

// Span is one closed span, times in integer microseconds on the run's
// shared stopwatch.
type Span struct {
	Rank    int    `json:"rank"`
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	EndUs   int64  `json:"end_us"`
	// Parent indexes the enclosing span in the run's slice, -1 for a
	// rank root.
	Parent int `json:"parent"`
	// Seq is the collective round for sequenced comm spans, 0 otherwise.
	Seq int64 `json:"seq,omitempty"`
}

func (s Span) durUs() int64 { return s.EndUs - s.StartUs }
func (s Span) isComm() bool { return strings.HasPrefix(s.Name, "comm:") }

// Run is the analyzer's input: one run's spans plus identity.
type Run struct {
	Label string
	Trace obs.TraceContext
	Spans []Span
}

// FromRecorder snapshots a recorder into an analyzable Run. Open spans
// are dropped (drain force-closes spans before export, so a well-formed
// trace has none).
func FromRecorder(r *obs.Recorder) Run {
	run := Run{Label: r.Label(), Trace: r.Trace()}
	src := r.Spans()
	remap := make([]int, len(src))
	for i := range remap {
		remap[i] = -1
	}
	for i, sp := range src {
		if sp.Open {
			continue
		}
		parent := -1
		// Parents precede children in creation order, so the remap entry
		// is already final; an open (dropped) parent orphans the child
		// into a root, which keeps the forest well-shaped.
		if sp.Parent >= 0 {
			parent = remap[sp.Parent]
		}
		remap[i] = len(run.Spans)
		run.Spans = append(run.Spans, Span{
			Rank: sp.Rank, Name: sp.Name,
			StartUs: sp.Start.Microseconds(), EndUs: sp.End.Microseconds(),
			Parent: parent, Seq: sp.Seq,
		})
	}
	return run
}

// RankLane is one rank's wall-time attribution. ComputeUs + CommUs +
// IdleUs == the run's WallUs exactly, by construction: busy is the
// union of the rank's root coverage, comm the union of its comm spans
// (always inside the roots), compute their difference, and idle the
// wall outside the roots (startup skew and early finish). SlackUs is
// how long before the global end this rank's roots ended — the
// headroom item-1 sharding can spend.
type RankLane struct {
	Rank      int   `json:"rank"`
	ComputeUs int64 `json:"compute_us"`
	CommUs    int64 `json:"comm_us"`
	IdleUs    int64 `json:"idle_us"`
	SlackUs   int64 `json:"slack_us"`
}

// PhaseCell is the attribution of one (phase, rank) cell: a depth-1
// span under the rank root ("approx-epol", "redo:octree-build", ...),
// its time split into comm (union of comm descendants) and compute
// (the rest). Repeated instances of one phase name aggregate.
type PhaseCell struct {
	Phase     string `json:"phase"`
	Rank      int    `json:"rank"`
	ComputeUs int64  `json:"compute_us"`
	CommUs    int64  `json:"comm_us"`
}

// PathStep is one segment of the critical path, rendered start→end.
// Kind is "compute" (the rank was the sole constraint) or "comm" (the
// rank was waiting in / crossing a collective; Name and Seq identify
// the round, and the step starts when the round's last arriver entered
// it).
type PathStep struct {
	Rank    int    `json:"rank"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	EndUs   int64  `json:"end_us"`
	Seq     int64  `json:"seq,omitempty"`
}

// TopSpan is one of the slowest spans of the run.
type TopSpan struct {
	Rank    int    `json:"rank"`
	Name    string `json:"name"`
	DurUs   int64  `json:"dur_us"`
	StartUs int64  `json:"start_us"`
}

// RankPhases is one rank's phase sequence in program order — pure
// structure, byte-identical between same-seed runs.
type RankPhases struct {
	Rank   int      `json:"rank"`
	Phases []string `json:"phases"`
}

// Report is the analyzer's output. The timing fields (wall, lanes,
// cells, path, top spans) are observational; PhaseOrder, CommRounds,
// and SpanCounts are the deterministic structure view.
type Report struct {
	Label string            `json:"label,omitempty"`
	Trace *obs.TraceContext `json:"trace,omitempty"`
	Ranks int               `json:"ranks"`

	WallUs  int64 `json:"wall_us"`
	StartUs int64 `json:"start_us"`

	PerRank []RankLane  `json:"per_rank"`
	Phases  []PhaseCell `json:"phases"`

	Path             []PathStep `json:"critical_path"`
	CritComputeUs    int64      `json:"crit_compute_us"`
	CritCommUs       int64      `json:"crit_comm_us"`
	CommFracPermille int64      `json:"comm_frac_permille"`

	TopSpans []TopSpan `json:"top_spans"`

	PhaseOrder []RankPhases     `json:"phase_order"`
	CommRounds map[string]int64 `json:"comm_rounds"`
	SpanCounts map[string]int64 `json:"span_counts"`
}

// iv is a half-open-ish inclusive interval [lo, hi] in µs.
type iv struct{ lo, hi int64 }

// unionLen returns the total length covered by the intervals.
func unionLen(ivs []iv) int64 {
	if len(ivs) == 0 {
		return 0
	}
	slices.SortFunc(ivs, func(a, b iv) int {
		if a.lo != b.lo {
			return int(a.lo - b.lo)
		}
		return int(a.hi - b.hi)
	})
	total := int64(0)
	curLo, curHi := ivs[0].lo, ivs[0].hi
	for _, x := range ivs[1:] {
		if x.lo > curHi {
			total += curHi - curLo
			curLo, curHi = x.lo, x.hi
			continue
		}
		if x.hi > curHi {
			curHi = x.hi
		}
	}
	return total + (curHi - curLo)
}

// groupKey identifies the comm spans of one logical collective round
// across ranks: (name, seq) when sequenced, per-rank occurrence order
// otherwise.
func groupKey(sp Span, occ int64) string {
	if sp.Seq > 0 {
		return fmt.Sprintf("%s#%d", sp.Name, sp.Seq)
	}
	return fmt.Sprintf("%s@%d", sp.Name, occ)
}

// Analyze attributes run's wall time. topK bounds the slowest-span
// list (≤ 0 means 10).
func Analyze(run Run, topK int) Report {
	if topK <= 0 {
		topK = 10
	}
	rep := Report{
		Label:      run.Label,
		PerRank:    []RankLane{},
		Phases:     []PhaseCell{},
		Path:       []PathStep{},
		TopSpans:   []TopSpan{},
		PhaseOrder: []RankPhases{},
		CommRounds: map[string]int64{},
		SpanCounts: map[string]int64{},
	}
	if !run.Trace.IsZero() {
		tc := run.Trace
		rep.Trace = &tc
	}
	spans := run.Spans
	if len(spans) == 0 {
		return rep
	}

	// Roots and the global wall window.
	rootsByRank := map[int][]int{}
	for i, sp := range spans {
		rep.SpanCounts[sp.Name]++
		if sp.Parent < 0 {
			rootsByRank[sp.Rank] = append(rootsByRank[sp.Rank], i)
		}
	}
	ranks := obs.SortedKeys(rootsByRank)
	rep.Ranks = len(ranks)
	wallLo, wallHi := int64(0), int64(0)
	first := true
	for _, rk := range ranks {
		for _, i := range rootsByRank[rk] {
			if first || spans[i].StartUs < wallLo {
				wallLo = spans[i].StartUs
			}
			if first || spans[i].EndUs > wallHi {
				wallHi = spans[i].EndUs
			}
			first = false
		}
	}
	rep.StartUs, rep.WallUs = wallLo, wallHi-wallLo

	// topAncestor[i] is span i's depth-1 ancestor (a phase), or i itself
	// when i is depth ≤ 1; -1 for roots.
	topAncestor := make([]int, len(spans))
	for i, sp := range spans {
		switch {
		case sp.Parent < 0:
			topAncestor[i] = -1
		case spans[sp.Parent].Parent < 0:
			topAncestor[i] = i
		default:
			topAncestor[i] = topAncestor[sp.Parent]
		}
	}

	// Per-rank lanes and per-(phase, rank) cells.
	commIvs := map[int][]iv{}   // rank → comm intervals
	rootIvs := map[int][]iv{}   // rank → root intervals
	rankEnd := map[int]int64{}  // rank → latest root end
	phaseComm := map[int][]iv{} // depth-1 span index → comm intervals inside it
	type cellKey struct {
		phase string
		rank  int
	}
	cellDur := map[cellKey]int64{}
	cellComm := map[cellKey]int64{}
	phaseSeq := map[int][]string{} // rank → phase names in creation order
	for i, sp := range spans {
		if sp.Parent < 0 {
			rootIvs[sp.Rank] = append(rootIvs[sp.Rank], iv{sp.StartUs, sp.EndUs})
			if sp.EndUs > rankEnd[sp.Rank] {
				rankEnd[sp.Rank] = sp.EndUs
			}
			continue
		}
		if topAncestor[i] == i { // depth-1: a phase (or a bare comm round)
			phaseSeq[sp.Rank] = append(phaseSeq[sp.Rank], sp.Name)
		}
		if sp.isComm() {
			commIvs[sp.Rank] = append(commIvs[sp.Rank], iv{sp.StartUs, sp.EndUs})
			if ta := topAncestor[i]; ta >= 0 {
				phaseComm[ta] = append(phaseComm[ta], iv{sp.StartUs, sp.EndUs})
			}
		}
	}
	for i, sp := range spans {
		if topAncestor[i] != i {
			continue
		}
		key := cellKey{sp.Name, sp.Rank}
		cellDur[key] += sp.durUs()
		cellComm[key] += unionLen(phaseComm[i])
		if sp.isComm() { // a depth-1 comm round is all comm
			cellComm[key] = cellDur[key]
		}
	}
	for _, rk := range ranks {
		busy := unionLen(rootIvs[rk])
		comm := unionLen(commIvs[rk])
		if comm > busy {
			comm = busy // clamp: a malformed trace must not go negative
		}
		rep.PerRank = append(rep.PerRank, RankLane{
			Rank:      rk,
			ComputeUs: busy - comm,
			CommUs:    comm,
			IdleUs:    rep.WallUs - busy,
			SlackUs:   wallHi - rankEnd[rk],
		})
		rep.PhaseOrder = append(rep.PhaseOrder, RankPhases{Rank: rk, Phases: append([]string{}, phaseSeq[rk]...)})
	}
	cells := make([]cellKey, 0, len(cellDur))
	for k := range cellDur {
		cells = append(cells, k)
	}
	slices.SortFunc(cells, func(a, b cellKey) int {
		if a.phase != b.phase {
			return strings.Compare(a.phase, b.phase)
		}
		return a.rank - b.rank
	})
	for _, k := range cells {
		comm := cellComm[k]
		if comm > cellDur[k] {
			comm = cellDur[k]
		}
		rep.Phases = append(rep.Phases, PhaseCell{
			Phase: k.phase, Rank: k.rank,
			ComputeUs: cellDur[k] - comm, CommUs: comm,
		})
	}

	// Comm groups for happens-before stitching, plus per-kind rounds.
	groups := map[string][]int{}
	occ := map[string]int64{} // "rank|name" → occurrence count
	commByRank := map[int][]int{}
	for i, sp := range spans {
		if !sp.isComm() {
			continue
		}
		okey := fmt.Sprintf("%d|%s", sp.Rank, sp.Name)
		occ[okey]++
		gk := groupKey(sp, occ[okey])
		groups[gk] = append(groups[gk], i)
		commByRank[sp.Rank] = append(commByRank[sp.Rank], i)
	}
	groupOf := map[int]string{}
	for gk, members := range groups {
		for _, i := range members {
			groupOf[i] = gk
		}
	}
	for _, name := range obs.SortedKeys(occ) {
		kind := name[strings.Index(name, "|")+1:]
		if occ[name] > rep.CommRounds[kind] {
			rep.CommRounds[kind] = occ[name]
		}
	}
	// Sort each rank's comm spans by (end, start, index) so the walk can
	// consume them latest-first with a strictly decreasing pointer.
	for rk := range commByRank {
		slices.SortFunc(commByRank[rk], func(a, b int) int {
			if spans[a].EndUs != spans[b].EndUs {
				return int(spans[a].EndUs - spans[b].EndUs)
			}
			if spans[a].StartUs != spans[b].StartUs {
				return int(spans[a].StartUs - spans[b].StartUs)
			}
			return a - b
		})
	}

	rep.walkCriticalPath(spans, ranks, rootIvs, rankEnd, commByRank, groups, groupOf)

	// Slowest spans (roots excluded — the rank span is the whole run).
	cand := []TopSpan{}
	for _, sp := range spans {
		if sp.Parent < 0 {
			continue
		}
		cand = append(cand, TopSpan{Rank: sp.Rank, Name: sp.Name, DurUs: sp.durUs(), StartUs: sp.StartUs})
	}
	slices.SortFunc(cand, func(a, b TopSpan) int {
		if a.DurUs != b.DurUs {
			return int(b.DurUs - a.DurUs)
		}
		if a.Rank != b.Rank {
			return a.Rank - b.Rank
		}
		if a.Name != b.Name {
			return strings.Compare(a.Name, b.Name)
		}
		return int(a.StartUs - b.StartUs)
	})
	if len(cand) > topK {
		cand = cand[:topK]
	}
	rep.TopSpans = cand
	return rep
}

// walkCriticalPath runs the backward happens-before walk: start at the
// last-finishing rank's root end; each time the walk meets a comm span,
// the time since the round's last arriver entered it is comm, and the
// walk jumps to that arriver — the rank that actually constrained the
// round. Per-rank decreasing index pointers plus a hard cap bound the
// walk even on degenerate (zero-duration) timestamps.
func (rep *Report) walkCriticalPath(spans []Span, ranks []int, rootIvs map[int][]iv,
	rankEnd map[int]int64, commByRank map[int][]int, groups map[string][]int,
	groupOf map[int]string) {

	if len(ranks) == 0 {
		return
	}
	cur := ranks[0]
	for _, rk := range ranks[1:] { // last-finishing rank, ties → lowest
		if rankEnd[rk] > rankEnd[cur] {
			cur = rk
		}
	}
	floor := map[int]int64{}
	for _, rk := range ranks {
		lo := int64(0)
		for j, r := range rootIvs[rk] {
			if j == 0 || r.lo < lo {
				lo = r.lo
			}
		}
		floor[rk] = lo
	}
	ptr := map[int]int{}
	for rk, list := range commByRank {
		ptr[rk] = len(list) - 1
	}
	t := rankEnd[cur]
	steps := []PathStep{}
	totalComm := 0
	for _, list := range commByRank {
		totalComm += len(list)
	}
	for iter := 0; iter <= totalComm+len(ranks); iter++ {
		list := commByRank[cur]
		i := ptr[cur]
		if i > len(list)-1 { // rank with no comm spans: ptr defaults to 0
			i = len(list) - 1
		}
		for i >= 0 && spans[list[i]].EndUs > t {
			i--
		}
		if i < 0 {
			if t > floor[cur] {
				steps = append(steps, PathStep{Rank: cur, Kind: "compute", Name: "compute", StartUs: floor[cur], EndUs: t})
			}
			break
		}
		cs := spans[list[i]]
		ptr[cur] = i - 1
		if cs.EndUs < t {
			steps = append(steps, PathStep{Rank: cur, Kind: "compute", Name: "compute", StartUs: cs.EndUs, EndUs: t})
		}
		// Last arriver of the round: max StartUs, ties → lowest rank.
		members := groups[groupOf[list[i]]]
		la := members[0]
		for _, m := range members[1:] {
			if spans[m].StartUs > spans[la].StartUs ||
				(spans[m].StartUs == spans[la].StartUs && spans[m].Rank < spans[la].Rank) {
				la = m
			}
		}
		stepStart := spans[la].StartUs
		if stepStart > cs.EndUs {
			stepStart = cs.EndUs
		}
		steps = append(steps, PathStep{
			Rank: cur, Kind: "comm", Name: cs.Name, Seq: cs.Seq,
			StartUs: stepStart, EndUs: cs.EndUs,
		})
		cur = spans[la].Rank
		if nt := spans[la].StartUs; nt < t {
			t = nt
		} else if cs.EndUs < t {
			t = cs.EndUs
		}
	}
	slices.Reverse(steps)
	rep.Path = steps
	for _, st := range steps {
		if st.Kind == "comm" {
			rep.CritCommUs += st.EndUs - st.StartUs
		} else {
			rep.CritComputeUs += st.EndUs - st.StartUs
		}
	}
	if rep.WallUs > 0 {
		rep.CommFracPermille = rep.CritCommUs * 1000 / rep.WallUs
	}
}

// PublishGauges exports the report's headline numbers as gauges on rec:
// critpath.comm_frac (per-mille of wall time the critical path spent in
// collectives) and critpath.slack_us.rank<N> per rank. Gauges are
// observational, so publishing them never perturbs Summary determinism.
func PublishGauges(rec *obs.Recorder, rep Report) {
	if rec == nil {
		return
	}
	rec.Gauge("critpath.comm_frac", rep.CommFracPermille)
	for _, lane := range rep.PerRank {
		rec.Gauge(fmt.Sprintf("critpath.slack_us.rank%d", lane.Rank), lane.SlackUs)
	}
}
