package critpath

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"strings"

	"gbpolar/internal/obs"
)

// Ingestion of the two on-disk trace formats the project already
// exports: the Chrome trace-event document (obs.WriteChromeTrace — what
// clustersim -trace-out and the daemon's per-attempt traces write) and
// the obs JSON document (obs.Recorder.WriteJSON). Parse reads either,
// sniffing by top-level key.

// chromeEvent mirrors the subset of the trace-event format the project
// emits: M metadata and X complete slices, times in fractional µs.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// ParseChromeTrace decodes a Chrome trace-event document into one Run
// per process (pid), sorted by pid. The exporter drops parent links, so
// nesting is reconstructed by interval containment per (pid, tid): obs
// emits spans in creation order and a rank's goroutine opens them with
// non-decreasing start times, so a pushdown stack recovers the exact
// forest (equal intervals nest in file order, matching force-close).
func ParseChromeTrace(data []byte) ([]Run, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("critpath: chrome trace: %w", err)
	}
	// Containment must be decided on the raw fractional-µs intervals the
	// exporter wrote: Span.StartUs/EndUs are rounded to whole µs, and a
	// child ending inside its parent's fractional tail (child 100.4µs,
	// parent 100.49µs → rounded 100) would look out of bounds against the
	// rounded value and be re-parented one level up.
	type open struct {
		idx        int // into run.Spans
		start, end float64
	}
	type proc struct {
		run   Run
		stack map[int][]open // tid → open spans, innermost last
	}
	procs := map[int]*proc{}
	getProc := func(pid int) *proc {
		p := procs[pid]
		if p == nil {
			p = &proc{stack: map[int][]open{}}
			procs[pid] = p
		}
		return p
	}
	const eps = 0.01 // µs; absorbs float rendering of ns-derived times
	for _, ev := range doc.TraceEvents {
		p := getProc(ev.Pid)
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" && ev.Args != nil {
				if s, ok := ev.Args["name"].(string); ok {
					p.run.Label = s
				}
				if s, ok := ev.Args["trace_id"].(string); ok {
					p.run.Trace.TraceID = s
				}
				if s, ok := ev.Args["job"].(string); ok {
					p.run.Trace.Job = s
				}
				if s, ok := ev.Args["tenant"].(string); ok {
					p.run.Trace.Tenant = s
				}
				if f, ok := ev.Args["attempt"].(float64); ok {
					p.run.Trace.Attempt = int(f)
				}
			}
		case "X":
			st := p.stack[ev.Tid]
			for len(st) > 0 {
				top := st[len(st)-1]
				if ev.Ts+ev.Dur <= top.end+eps && ev.Ts >= top.start-eps {
					break
				}
				st = st[:len(st)-1]
			}
			parent := -1
			if len(st) > 0 {
				parent = st[len(st)-1].idx
			}
			sp := Span{
				Rank:    ev.Tid,
				Name:    ev.Name,
				StartUs: int64(math.Round(ev.Ts)),
				EndUs:   int64(math.Round(ev.Ts + ev.Dur)),
				Parent:  parent,
			}
			if ev.Args != nil {
				if f, ok := ev.Args["seq"].(float64); ok {
					sp.Seq = int64(f)
				}
			}
			p.stack[ev.Tid] = append(st, open{idx: len(p.run.Spans), start: ev.Ts, end: ev.Ts + ev.Dur})
			p.run.Spans = append(p.run.Spans, sp)
		}
	}
	runs := make([]Run, 0, len(procs))
	for _, pid := range obs.SortedKeys(procs) {
		runs = append(runs, procs[pid].run)
	}
	return runs, nil
}

// obsJSONDoc mirrors obs.Recorder.WriteJSON's span section.
type obsJSONDoc struct {
	Label string            `json:"label"`
	Trace *obs.TraceContext `json:"trace"`
	Spans []struct {
		Rank    int     `json:"rank"`
		Name    string  `json:"name"`
		StartUs float64 `json:"start_us"`
		DurUs   float64 `json:"dur_us"`
		Parent  int     `json:"parent"`
		Seq     int64   `json:"seq"`
	} `json:"spans"`
}

// ParseObsJSON decodes an obs WriteJSON document (explicit parent
// links) into one Run.
func ParseObsJSON(data []byte) (Run, error) {
	var doc obsJSONDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return Run{}, fmt.Errorf("critpath: obs json: %w", err)
	}
	run := Run{Label: doc.Label}
	if doc.Trace != nil {
		run.Trace = *doc.Trace
	}
	for _, sp := range doc.Spans {
		parent := sp.Parent
		if parent < -1 || parent >= len(doc.Spans) {
			parent = -1
		}
		run.Spans = append(run.Spans, Span{
			Rank: sp.Rank, Name: sp.Name,
			StartUs: int64(math.Round(sp.StartUs)),
			EndUs:   int64(math.Round(sp.StartUs + sp.DurUs)),
			Parent:  parent, Seq: sp.Seq,
		})
	}
	return run, nil
}

// Parse sniffs the document flavor by top-level key: "traceEvents" is a
// Chrome trace (possibly several runs), "spans" an obs JSON document.
func Parse(data []byte) ([]Run, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("critpath: not a JSON object: %w", err)
	}
	if _, ok := probe["traceEvents"]; ok {
		return ParseChromeTrace(data)
	}
	if _, ok := probe["spans"]; ok {
		run, err := ParseObsJSON(data)
		if err != nil {
			return nil, err
		}
		return []Run{run}, nil
	}
	keys := make([]string, 0, len(probe))
	for k := range probe {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return nil, fmt.Errorf("critpath: unrecognized trace document (top-level keys: %s)", strings.Join(keys, ", "))
}
