package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestChromeTraceNameEscaping feeds the exporter span names and labels
// containing JSON-hostile characters — quotes, backslashes, newlines,
// control characters, multi-byte UTF-8 — and requires the emitted trace
// to parse and round-trip the names byte for byte (encoding/json does
// the escaping; this pins that no hand-rolled formatting sneaks in).
func TestChromeTraceNameEscaping(t *testing.T) {
	names := []string{
		`quoted "phase"`,
		`back\slash`,
		"new\nline",
		"tab\tand ctrl\x01",
		"hélix-φάση-相位",
		`{"looks":"like json"}`,
	}
	r, _ := newTestRecorder()
	r.SetLabel("esc \"label\"\nΔ")
	for _, n := range names {
		sp := r.StartSpan(0, n)
		sp.End()
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace with hostile names failed to parse: %v", err)
	}
	got := map[string]bool{}
	label := ""
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			got[ev.Name] = true
		case "M":
			if ev.Name == "process_name" {
				label, _ = ev.Args["name"].(string)
			}
		}
	}
	for _, n := range names {
		if !got[n] {
			t.Errorf("span name %q did not round-trip (got %v)", n, got)
		}
	}
	if label != "esc \"label\"\nΔ" {
		t.Errorf("process label round-trip: %q", label)
	}

	// The JSON exporter must survive the same names.
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("WriteJSON produced invalid JSON for hostile names")
	}
}
