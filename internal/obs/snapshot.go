package obs

// Counter-side state capture for checkpoint/resume. A phase checkpoint
// must carry not just the numeric payload but the deterministic
// observability state accumulated so far: a run resumed from the
// checkpoint then produces the same counter-side Summary as an
// uninterrupted run — counters and counter-side histograms sum, and
// closed-span name counts add to the spans the resumed run creates
// itself. Gauges, gauge-side histograms, span timings, and the flight
// recorder are deliberately NOT captured: they are observational (host-
// scheduling dependent) and excluded from Summary anyway.

// HistState is one counter-side histogram's full mutable state inside a
// CounterSnapshot: total count, sum, and the fixed log₂ bucket counts
// (len histBuckets; shorter slices restore into the low buckets).
type HistState struct {
	Count   int64
	Sum     int64
	Buckets []int64
}

// CounterSnapshot is the deterministic counter-side state of a Recorder
// at a phase boundary.
type CounterSnapshot struct {
	// Counters are the scalar deterministic counters.
	Counters map[string]int64
	// Hists are the counter-side histograms keyed by name.
	Hists map[string]HistState
	// SpanCounts are per-name counts of the CLOSED spans. Open spans (the
	// per-rank roots, while a snapshot is taken mid-run) are excluded on
	// purpose: the resumed run opens its own roots, and counting both
	// would double the rank spans relative to an uninterrupted run.
	SpanCounts map[string]int64
}

// CounterSnapshot captures the recorder's counter-side state. Nil
// recorders snapshot to nil.
func (r *Recorder) CounterSnapshot() *CounterSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &CounterSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Hists:      make(map[string]HistState, len(r.hists)),
		SpanCounts: make(map[string]int64),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, h := range r.hists {
		hs := HistState{Count: h.count, Sum: h.sum, Buckets: make([]int64, histBuckets)}
		copy(hs.Buckets, h.buckets[:])
		s.Hists[k] = hs
	}
	for k, v := range r.baseSpans {
		s.SpanCounts[k] += v
	}
	for _, sd := range r.spans {
		if !sd.open {
			s.SpanCounts[sd.name]++
		}
	}
	return s
}

// RestoreCounterSnapshot merges a snapshot into the recorder: counters
// and histograms add, and the snapshot's span counts accumulate into a
// base that Summary folds into its span section. Call it on the fresh
// recorder of a resumed run, before the run starts. A nil snapshot or
// nil recorder is a no-op.
func (r *Recorder) RestoreCounterSnapshot(s *CounterSnapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range s.Counters {
		r.counters[k] += v
	}
	for k, hs := range s.Hists {
		h := r.hists[k]
		if h == nil {
			h = &histogram{}
			r.hists[k] = h
		}
		h.count += hs.Count
		h.sum += hs.Sum
		for i, b := range hs.Buckets {
			if i >= histBuckets {
				break
			}
			h.buckets[i] += b
		}
	}
	if r.baseSpans == nil {
		r.baseSpans = make(map[string]int64, len(s.SpanCounts))
	}
	for k, v := range s.SpanCounts {
		r.baseSpans[k] += v
	}
}
