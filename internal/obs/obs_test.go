package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic monotone clock for tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) tick() time.Duration {
	c.now += time.Millisecond
	return c.now
}

func newTestRecorder() (*Recorder, *fakeClock) {
	c := &fakeClock{}
	return NewRecorder(c.tick), c
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.StartSpan(0, "x")
	sp.End()
	r.Count("a", 1)
	r.Gauge("b", 2)
	r.GaugeAdd("b", 3)
	r.SetLabel("l")
	if r.Label() != "" || r.Summary() != "" {
		t.Errorf("nil recorder produced output: %q / %q", r.Label(), r.Summary())
	}
	if r.Spans() != nil || r.Counters() != nil || r.Gauges() != nil || r.OpenSpans() != 0 {
		t.Error("nil recorder returned non-empty state")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := WriteChromeTrace(&buf, r, nil); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	// The zero Span must also be inert.
	Span{}.End()
}

func TestSpanNestingAndParents(t *testing.T) {
	r, _ := newTestRecorder()
	root := r.StartSpan(3, "root")
	child := r.StartSpan(3, "child")
	grand := r.StartSpan(3, "grand")
	other := r.StartSpan(5, "other-rank") // separate stack
	grand.End()
	child.End()
	other.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if r.OpenSpans() != 0 {
		t.Errorf("%d spans left open", r.OpenSpans())
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["root"].Parent != -1 || byName["other-rank"].Parent != -1 {
		t.Errorf("root parents: %d, %d (want -1, -1)", byName["root"].Parent, byName["other-rank"].Parent)
	}
	if p := byName["child"].Parent; spans[p].Name != "root" {
		t.Errorf("child's parent is %q, want root", spans[p].Name)
	}
	if p := byName["grand"].Parent; spans[p].Name != "child" {
		t.Errorf("grand's parent is %q, want child", spans[p].Name)
	}
	// Containment: every child interval inside its parent's.
	for _, sp := range spans {
		if sp.Parent < 0 {
			continue
		}
		par := spans[sp.Parent]
		if sp.Start < par.Start || sp.End > par.End {
			t.Errorf("span %q [%v,%v] escapes parent %q [%v,%v]",
				sp.Name, sp.Start, sp.End, par.Name, par.Start, par.End)
		}
	}
}

func TestEndForceClosesChildren(t *testing.T) {
	r, _ := newTestRecorder()
	root := r.StartSpan(0, "root")
	r.StartSpan(0, "leaked-child") // never ended (simulates error unwinding)
	r.StartSpan(0, "leaked-grand")
	root.End()
	if n := r.OpenSpans(); n != 0 {
		t.Fatalf("%d spans open after root.End, want 0", n)
	}
	spans := r.Spans()
	rootEnd := spans[0].End
	for _, sp := range spans[1:] {
		if sp.End != rootEnd {
			t.Errorf("force-closed span %q ends at %v, want parent end %v", sp.Name, sp.End, rootEnd)
		}
	}
	// Double End stays a no-op.
	root.End()
	if len(r.Spans()) != 3 {
		t.Error("double End changed the span list")
	}
}

func TestSummaryDeterministicAndSorted(t *testing.T) {
	build := func(order []string) string {
		r, _ := newTestRecorder()
		r.SetLabel("unit")
		for _, k := range order {
			r.Count(k, 2)
		}
		r.Gauge("sched.steals", 99) // must NOT appear
		sp := r.StartSpan(0, "approx-epol")
		sp.End()
		return r.Summary()
	}
	a := build([]string{"zz", "aa", "mm"})
	b := build([]string{"mm", "zz", "aa"})
	if a != b {
		t.Errorf("summaries differ by insertion order:\n%s\nvs\n%s", a, b)
	}
	want := "# unit\ncounter aa 2\ncounter mm 2\ncounter zz 2\nspan approx-epol 1\n"
	if a != want {
		t.Errorf("summary:\n%q\nwant:\n%q", a, want)
	}
	if strings.Contains(a, "steals") {
		t.Error("gauge leaked into the deterministic summary")
	}
}

func TestWriteJSONParses(t *testing.T) {
	r, _ := newTestRecorder()
	r.SetLabel("j")
	r.Count("c", 7)
	r.GaugeAdd("g", 8)
	sp := r.StartSpan(1, "phase")
	sp.End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Label    string           `json:"label"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Spans    []struct {
			Rank int    `json:"rank"`
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Label != "j" || doc.Counters["c"] != 7 || doc.Gauges["g"] != 8 {
		t.Errorf("round trip lost data: %+v", doc)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "phase" || doc.Spans[0].Rank != 1 {
		t.Errorf("spans: %+v", doc.Spans)
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	mk := func(label string, ranks int) *Recorder {
		r, _ := newTestRecorder()
		r.SetLabel(label)
		for rank := 0; rank < ranks; rank++ {
			sp := r.StartSpan(rank, "work")
			inner := r.StartSpan(rank, "comm:allreduce")
			inner.End()
			sp.End()
		}
		return r
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, mk("a", 2), mk("b", 3)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var complete, meta int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			pids[ev.Pid] = true
		case "M":
			meta++
		}
	}
	if complete != 2*2+3*2 {
		t.Errorf("complete events: %d, want 10", complete)
	}
	if !pids[0] || !pids[1] {
		t.Errorf("pids seen: %v, want both recorders", pids)
	}
	if meta == 0 {
		t.Error("no metadata events (process/thread names)")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
	mi := map[int]string{9: "", 1: "", 5: ""}
	gi := SortedKeys(mi)
	if len(gi) != 3 || gi[0] != 1 || gi[1] != 5 || gi[2] != 9 {
		t.Errorf("SortedKeys(int) = %v", gi)
	}
	if out := SortedKeys(map[int]int(nil)); len(out) != 0 {
		t.Errorf("nil map keys = %v", out)
	}
}
