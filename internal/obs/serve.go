package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Live introspection endpoint. Serve starts an HTTP server exposing the
// attached recorders as /metrics (Prometheus text exposition), /healthz
// (live-rank view, when a recorder has a health source registered), and
// the standard net/http/pprof handlers under /debug/pprof/.
//
// The server sits on the far side of the determinism boundary: it only
// *reads* recorder snapshots (all nil-safe and lock-protected), so a
// run with the endpoint enabled stays bitwise identical to one without
// — asserted by the gb serve tests. The obs package is policed like a
// numeric kernel by gblint's determinism analyzer; the one real clock
// read here (server start time, for /healthz uptime) carries a
// documented //lint:ignore marking it as outside the measured
// computation.

// HealthView is a live-rank snapshot served at /healthz — the obs-side
// mirror of simmpi's Health (simmpi registers a source on the recorder
// rather than obs importing simmpi, keeping the dependency one-way).
type HealthView struct {
	Live       []int `json:"live"`
	Lost       []int `json:"lost"`
	Straggling []int `json:"straggling"`
}

// SetHealthSource registers fn as this recorder's live-rank view; Serve
// calls it on every /healthz request. fn must be safe for concurrent
// use (simmpi's Health snapshot is).
func (r *Recorder) SetHealthSource(fn func() HealthView) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.health = fn
	r.mu.Unlock()
}

// healthSource returns the registered live-rank source, or nil.
func (r *Recorder) healthSource() func() HealthView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// Health returns the recorder's live-rank view when a source is
// registered (simmpi's observed runs register one), and ok=false when
// none is. It is how the serving layer consults the last run's rank
// health without reaching into simmpi: lost or straggling ranks are an
// overload signal worth pre-shedding on.
func (r *Recorder) Health() (HealthView, bool) {
	src := r.healthSource()
	if src == nil {
		return HealthView{}, false
	}
	return src(), true
}

// Server is a running obs endpoint. Close it when the run ends.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time

	mu    sync.Mutex
	recs  []*Recorder
	reg   []*Recorder // cached scrape registry; nil = rebuild from recs
	ready func() (bool, string)
}

// Serve starts the endpoint on addr (host:port; ":0" picks a free port —
// read it back with Addr). The initial recorders are optional; Attach
// adds more while the server runs.
func Serve(addr string, recs ...*Recorder) (*Server, error) {
	s := &Server{}
	for _, r := range recs {
		if r != nil {
			s.recs = append(s.recs, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/livez", s.handleLivez)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve on %q: %w", addr, err)
	}
	s.ln = ln
	//lint:ignore determinism server start time feeds only /healthz uptime, outside the measured computation
	s.started = time.Now()
	s.srv = &http.Server{Handler: mux}
	go func() {
		// Serve returns http.ErrServerClosed after Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Attach adds a recorder to the live views (clustersim attaches one per
// layout as the sweep progresses). Nil recorders are ignored. Attach
// invalidates the cached scrape registry, so a recorder attached after
// the first /metrics scrape shows up on the next one — a recorder must
// never be invisible just because it arrived mid-sweep.
func (s *Server) Attach(rec *Recorder) {
	if s == nil || rec == nil {
		return
	}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.reg = nil
	s.mu.Unlock()
}

// Addr returns the listener's address ("127.0.0.1:43210").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// SetReadySource registers fn as the server's readiness probe: /readyz
// reports 200 while fn returns true and 503 (with fn's detail string in
// the body) once it returns false. Liveness and readiness are split on
// purpose — a draining daemon is alive (don't kill it, it is
// checkpointing its in-flight jobs) but not ready (don't route new work
// to it). Without a source, /readyz mirrors /livez. fn must be safe for
// concurrent use.
func (s *Server) SetReadySource(fn func() (bool, string)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ready = fn
	s.mu.Unlock()
}

// readySource returns the registered readiness probe, or nil.
func (s *Server) readySource() func() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready
}

// snapshot returns the scrape registry: the attached recorders, copied
// once and reused across scrapes until Attach invalidates it. The cache
// only holds recorder pointers — metric values are re-read live on every
// scrape; what must not go stale is the set of recorders itself.
func (s *Server) snapshot() []*Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reg == nil {
		s.reg = append([]*Recorder{}, s.recs...)
	}
	return s.reg
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.snapshot()...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleLivez is the liveness probe: the process is up and its HTTP
// loop is turning. It never consults readiness — a draining server
// still answers 200 here.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe; see SetReadySource.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if fn := s.readySource(); fn != nil {
		if ok, detail := fn(); !ok {
			http.Error(w, "not ready: "+detail, http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// healthzDoc is the /healthz response body.
type healthzDoc struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Runs          []healthzRun `json:"runs"`
}

type healthzRun struct {
	Label string `json:"label"`
	HealthView
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	//lint:ignore determinism uptime reporting on the health endpoint, outside the measured computation
	doc := healthzDoc{UptimeSeconds: time.Now().Sub(s.started).Seconds(), Runs: []healthzRun{}}
	for _, rec := range s.snapshot() {
		src := rec.healthSource()
		if src == nil {
			continue
		}
		doc.Runs = append(doc.Runs, healthzRun{Label: rec.Label(), HealthView: src()})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// promFamily accumulates one metric family's samples across recorders.
type promFamily struct {
	typ   string // counter | gauge | histogram
	lines []string
}

// WritePrometheus renders the recorders' counters, gauges, and both
// histogram families in the Prometheus text exposition format: one
// family per metric name (sorted), one sample per recorder labeled
// {run="<label>"}, histograms as cumulative _bucket/_sum/_count series.
// All map iteration goes through SortedKeys, so the output for a given
// recorder state is deterministic.
func WritePrometheus(w io.Writer, recs ...*Recorder) error {
	fams := make(map[string]*promFamily)
	add := func(name, typ, line string) {
		f := fams[name]
		if f == nil {
			f = &promFamily{typ: typ}
			fams[name] = f
		}
		f.lines = append(f.lines, line)
	}
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		run := rec.Label()
		if run == "" {
			run = fmt.Sprintf("recorder-%d", i)
		}
		lbl := `{run="` + promLabelEscape(run) + `"}`
		counters := rec.Counters()
		for _, k := range SortedKeys(counters) {
			name := promName(k)
			add(name, "counter", fmt.Sprintf("%s%s %d", name, lbl, counters[k]))
		}
		gauges := rec.Gauges()
		for _, k := range SortedKeys(gauges) {
			name := promName(k)
			add(name, "gauge", fmt.Sprintf("%s%s %d", name, lbl, gauges[k]))
		}
		for _, h := range rec.Histograms() {
			addPromHistogram(add, h, run)
		}
		for _, h := range rec.GaugeHistograms() {
			addPromHistogram(add, h, run)
		}
	}
	for _, name := range SortedKeys(fams) {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// addPromHistogram emits one histogram's cumulative bucket, sum, and
// count series under the family of its base name.
func addPromHistogram(add func(name, typ, line string), h HistogramRecord, run string) {
	name := promName(h.Name)
	esc := promLabelEscape(run)
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		add(name, "histogram",
			fmt.Sprintf(`%s_bucket{run="%s",le="%d"} %d`, name, esc, b.UpperBound, cum))
	}
	infLine := fmt.Sprintf(`%s_bucket{run="%s",le="+Inf"} %d`, name, esc, h.Count)
	if h.ExemplarID != "" {
		// OpenMetrics-style exemplar on the +Inf bucket: the most recent
		// trace-tagged observation, so a scraped SLO spike resolves to a
		// concrete trace ID to pull up with gbtrace.
		infLine += fmt.Sprintf(` # {trace_id="%s"} %d`, promLabelEscape(h.ExemplarID), h.ExemplarValue)
	}
	add(name, "histogram", infLine)
	add(name, "histogram", fmt.Sprintf(`%s_sum{run="%s"} %d`, name, esc, h.Sum))
	add(name, "histogram", fmt.Sprintf(`%s_count{run="%s"} %d`, name, esc, h.Count))
}

// promName maps a recorder metric name onto a legal Prometheus family
// name: the gbpolar_ namespace prefix, dots and other separators
// becoming underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("gbpolar_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelEscape escapes a label value per the exposition format
// (backslash, double quote, and newline).
func promLabelEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
