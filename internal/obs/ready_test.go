package obs

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func TestLivezAlwaysOK(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/livez"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/livez = %d %q", code, body)
	}
	// Liveness ignores readiness: a draining server still answers 200.
	srv.SetReadySource(func() (bool, string) { return false, "draining" })
	if code, _ := get(t, base+"/livez"); code != http.StatusOK {
		t.Errorf("/livez while not ready = %d", code)
	}
}

func TestReadyzFollowsSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Without a source, readiness mirrors liveness.
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz without source = %d", code)
	}

	var draining atomic.Bool
	srv.SetReadySource(func() (bool, string) {
		if draining.Load() {
			return false, "draining: 2 jobs checkpointing"
		}
		return true, ""
	})
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz while ready = %d", code)
	}
	draining.Store(true)
	code, body := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d", code)
	}
	if !strings.Contains(body, "draining: 2 jobs checkpointing") {
		t.Errorf("/readyz body %q lacks the source's detail", body)
	}
	draining.Store(false)
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after drain canceled = %d", code)
	}
}

func TestRecorderHealthAccessor(t *testing.T) {
	r, _ := newTestRecorder()
	if _, ok := r.Health(); ok {
		t.Error("recorder without a source reported a health view")
	}
	r.SetHealthSource(func() HealthView {
		return HealthView{Live: []int{0, 1}, Lost: []int{2}}
	})
	hv, ok := r.Health()
	if !ok || len(hv.Live) != 2 || len(hv.Lost) != 1 {
		t.Errorf("Health() = %+v, %v", hv, ok)
	}
	var nilRec *Recorder
	if _, ok := nilRec.Health(); ok {
		t.Error("nil recorder reported a health view")
	}
}
