package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceContextOnRecorder(t *testing.T) {
	var nilRec *Recorder
	nilRec.SetTrace(TraceContext{TraceID: "t-x"})
	if got := nilRec.Trace(); !got.IsZero() {
		t.Errorf("nil recorder returned a trace: %+v", got)
	}

	r, _ := newTestRecorder()
	if !r.Trace().IsZero() {
		t.Error("fresh recorder carries a trace")
	}
	tc := TraceContext{TraceID: "t-1a2b", Job: "j-1a2b", Tenant: "acme", Attempt: 2}
	r.SetTrace(tc)
	if got := r.Trace(); got != tc {
		t.Errorf("Trace() = %+v, want %+v", got, tc)
	}
}

// The trace identity must ride every exporter: the JSON doc's "trace"
// object, the Chrome trace process metadata, and the flight dump header.
func TestTraceStampsExports(t *testing.T) {
	r, _ := newTestRecorder()
	r.SetLabel("job run")
	r.SetTrace(TraceContext{TraceID: "t-feed", Job: "j-feed", Tenant: "acme", Attempt: 1})
	r.StartSpan(0, "rank").End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Trace *TraceContext `json:"trace"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Trace == nil || doc.Trace.TraceID != "t-feed" || doc.Trace.Tenant != "acme" {
		t.Errorf("WriteJSON trace = %+v", doc.Trace)
	}

	buf.Reset()
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace_id":"t-feed"`, `"job":"j-feed"`, `"tenant":"acme"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Chrome trace lacks %s:\n%s", want, buf.String())
		}
	}

	if dump := r.FlightDump(); !strings.Contains(dump, "trace t-feed job=j-feed tenant=acme attempt=1") {
		t.Errorf("flight dump lacks trace header:\n%s", dump)
	}
}

// An untraced recorder's exports must be unchanged: no "trace" key, no
// trace args, no flight header line.
func TestZeroTraceLeavesExportsAlone(t *testing.T) {
	r, _ := newTestRecorder()
	r.StartSpan(0, "rank").End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"trace"`) {
		t.Errorf("untraced WriteJSON has a trace key:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("untraced Chrome trace has trace_id:\n%s", buf.String())
	}
	if strings.Contains(r.FlightDump(), "trace ") {
		t.Errorf("untraced flight dump has a trace header:\n%s", r.FlightDump())
	}
}

func TestStartSpanSeq(t *testing.T) {
	r, _ := newTestRecorder()
	r.StartSpanSeq(0, "comm:allreduce", 1).End()
	r.StartSpanSeq(1, "comm:allreduce", 1).End()
	r.StartSpanSeq(0, "comm:allreduce", 2).End()
	r.StartSpan(0, "octree-build").End()

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	wantSeq := []int64{1, 1, 2, 0}
	for i, sp := range spans {
		if sp.Seq != wantSeq[i] {
			t.Errorf("span %d (%s) seq = %d, want %d", i, sp.Name, sp.Seq, wantSeq[i])
		}
	}

	// Seq survives the JSON export (omitted when zero) and the Chrome
	// trace args.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"seq":2`) {
		t.Errorf("WriteJSON lacks seq: %s", buf.String())
	}
	buf.Reset()
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"args":{"seq":2}`) {
		t.Errorf("Chrome trace lacks seq args: %s", buf.String())
	}
}

func TestObserveGaugeExemplar(t *testing.T) {
	r, _ := newTestRecorder()
	r.ObserveGaugeEx("slo.run_us.tenant.acme", 100, "t-aaaa")
	r.ObserveGaugeEx("slo.run_us.tenant.acme", 900, "t-bbbb")
	r.ObserveGaugeEx("slo.run_us.tenant.acme", 400, "") // no exemplar: keeps the last

	hs := r.GaugeHistograms()
	if len(hs) != 1 {
		t.Fatalf("got %d histograms", len(hs))
	}
	h := hs[0]
	if h.Count != 3 || h.Sum != 1400 {
		t.Errorf("count=%d sum=%d", h.Count, h.Sum)
	}
	if h.ExemplarID != "t-bbbb" || h.ExemplarValue != 900 {
		t.Errorf("exemplar = %q/%d, want t-bbbb/900", h.ExemplarID, h.ExemplarValue)
	}

	var nilRec *Recorder
	nilRec.ObserveGaugeEx("x", 1, "t-cccc") // must not panic
}
