// Package obs is the project's zero-dependency observability layer for
// the simulated cluster: per-rank hierarchical spans around the algorithm
// phases and collectives, named counters, gauges and fixed-bucket
// histograms (histogram.go), a bounded per-rank flight recorder for
// post-mortems (flight.go), an opt-in live HTTP endpoint serving
// Prometheus text, health, and pprof (serve.go), and exporters (a
// deterministic text summary, JSON, and the Chrome trace-event format —
// see export.go).
//
// # Determinism contract
//
// The recorder never reads the clock itself: NewRecorder takes the clock
// as a function, and callers inject perf.Stopwatch.Elapsed so every
// timestamp crosses the project's one sanctioned measurement boundary
// (internal/perf/clock.go). The `determinism` analyzer in
// internal/analysis polices this package like a numeric kernel — a
// time.Now call here would be a lint finding. Instrumentation is
// strictly write-only with respect to the computation: nothing a
// Recorder collects ever feeds back into the numbers a run produces.
//
// Counters and gauges are deliberately distinct:
//
//   - Count records values that are a pure function of the workload and
//     layout (collective calls and bytes, near/far pair splits, injected
//     fault events). Counters appear in Summary, which is therefore
//     bitwise identical between two same-seed crash-free runs.
//   - Gauge/GaugeAdd record observational values that legitimately vary
//     with host scheduling (steal counts, wall time, priced seconds).
//     Gauges are exported by WriteJSON and the trace, never by Summary.
//
// Histograms follow the same split: Observe is the counter-side
// distribution (pair-split sizes, redo iterations, per-call comm bytes)
// and shows its quantiles in Summary; ObserveGauge is the observational
// distribution (span durations, per-worker task counts) and is exported
// by WriteJSON and /metrics only.
//
// A nil *Recorder is a valid no-op on every method, so call sites need
// no guards; the zero Span is likewise inert.
package obs

import (
	"strings"
	"sync"
	"time"
)

// TraceContext is the request identity a recorder carries: the serving
// layer mints one per job (internal/serve), the supervisor stamps the
// attempt number per rung (internal/supervise), and every exporter —
// JSON, Chrome trace, flight dump, /metrics exemplars — then tags its
// output with it, so a span seen in any tool resolves back to the
// request that caused it. The zero TraceContext means "untraced" and
// changes no output.
type TraceContext struct {
	// TraceID is the end-to-end request identity ("t-1a2b3c4d..."). One
	// trace ID covers every supervised attempt of one job.
	TraceID string `json:"trace_id"`
	// Job is the serving job ID the trace belongs to ("j-...").
	Job string `json:"job,omitempty"`
	// Tenant is the quota bucket the request was admitted under.
	Tenant string `json:"tenant,omitempty"`
	// Attempt is the 1-based supervised attempt this recorder covers
	// (0 for recorders outside the supervisor).
	Attempt int `json:"attempt,omitempty"`
}

// IsZero reports whether the context carries no identity.
func (tc TraceContext) IsZero() bool { return tc == TraceContext{} }

// Recorder collects spans, counters, and gauges for one run (or one
// labeled unit of work, e.g. a clustersim layout). Safe for concurrent
// use by rank goroutines.
type Recorder struct {
	clock func() time.Duration

	mu         sync.Mutex
	label      string
	trace      TraceContext
	spans      []spanData
	open       map[int][]int32 // per-rank stack of open span indices
	counters   map[string]int64
	gauges     map[string]int64
	hists      map[string]*histogram // counter-side (see histogram.go)
	gaugeHists map[string]*histogram // observational side
	flight     map[int]*flightRing   // per-rank recent-event rings (flight.go)
	health     func() HealthView     // live-rank source for Serve's /healthz
	baseSpans  map[string]int64      // restored span counts (snapshot.go)
}

// spanData is the internal mutable span record.
type spanData struct {
	rank   int
	name   string
	start  time.Duration
	end    time.Duration
	parent int32 // index into spans, -1 for a rank root
	seq    int64 // 1-based collective round, 0 for non-comm spans
	open   bool
}

// NewRecorder returns a recorder reading time through the given clock —
// pass perf.StartTimer().Elapsed so timestamps stay behind the perf
// measurement boundary. A nil clock yields zero timestamps (spans still
// form a well-shaped tree; only durations are lost).
func NewRecorder(clock func() time.Duration) *Recorder {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Recorder{
		clock:      clock,
		open:       make(map[int][]int32),
		counters:   make(map[string]int64),
		gauges:     make(map[string]int64),
		hists:      make(map[string]*histogram),
		gaugeHists: make(map[string]*histogram),
		flight:     make(map[int]*flightRing),
	}
}

// SetLabel names the recorder (shown by Summary and as the Chrome trace
// process name).
func (r *Recorder) SetLabel(label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.label = label
	r.mu.Unlock()
}

// Label returns the recorder's name.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.label
}

// SetTrace stamps the recorder with a request identity. Exporters pick
// it up (WriteJSON's "trace" object, Chrome trace process metadata and
// slice args, the FlightDump header); Summary deliberately does not —
// trace IDs are per-request, and Summary's contract is byte-identity
// between same-seed runs.
func (r *Recorder) SetTrace(tc TraceContext) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace = tc
	r.mu.Unlock()
}

// Trace returns the recorder's request identity (zero when untraced).
func (r *Recorder) Trace() TraceContext {
	if r == nil {
		return TraceContext{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// Span is a handle on one open span. The zero Span is inert.
type Span struct {
	r    *Recorder
	idx  int32
	rank int
}

// StartSpan opens a span named name on the given rank, nested under the
// rank's innermost open span.
func (r *Recorder) StartSpan(rank int, name string) Span {
	return r.StartSpanSeq(rank, name, 0)
}

// StartSpanSeq opens a span carrying a sequence number — simmpi tags
// each collective span with the rank's 1-based round count for that
// collective kind, so the critical-path analyzer can match the comm
// spans of one logical collective across ranks by (name, seq) instead
// of by wall-clock proximity (which heal-redo skew would break). seq 0
// means "unsequenced" and is what StartSpan passes.
func (r *Recorder) StartSpanSeq(rank int, name string, seq int64) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	parent := int32(-1)
	if st := r.open[rank]; len(st) > 0 {
		parent = st[len(st)-1]
	}
	idx := int32(len(r.spans))
	r.spans = append(r.spans, spanData{
		rank: rank, name: name, start: now, end: now, parent: parent, seq: seq, open: true,
	})
	r.open[rank] = append(r.open[rank], idx)
	kind := flightSpan
	if strings.HasPrefix(name, "comm:") {
		kind = flightComm
	}
	r.flightEvent(rank, kind, name)
	return Span{r: r, idx: idx, rank: rank}
}

// End closes the span. Any descendants still open are force-closed at
// the same timestamp: an error return or an injected crash unwinds a
// rank's stack past inner spans' End calls, and closing the enclosing
// (deferred) span must still leave a balanced tree. Ending a span twice
// is a no-op.
func (s Span) End() {
	if s.r == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.spans[s.idx].open {
		return
	}
	now := r.clock()
	st := r.open[s.rank]
	for len(st) > 0 {
		top := st[len(st)-1]
		st = st[:len(st)-1]
		if sd := &r.spans[top]; sd.open {
			sd.open = false
			sd.end = now
			// Span durations are wall time — scheduling-dependent by
			// nature — so they histogram on the observational side.
			r.histInto(r.gaugeHists, "span."+sd.name+".us", (sd.end - sd.start).Microseconds())
		}
		if top == s.idx {
			break
		}
	}
	r.open[s.rank] = st
}

// Count adds delta to the named deterministic counter (see the package
// doc for the counter/gauge split).
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets the named observational gauge.
func (r *Recorder) Gauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// GaugeAdd adds delta to the named observational gauge.
func (r *Recorder) GaugeAdd(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// SpanRecord is an exported span snapshot.
type SpanRecord struct {
	// Rank is the SPMD rank (0 for shared-memory and serial runs).
	Rank int
	// Name is the span name ("approx-epol", "comm:allreduce", ...).
	Name string
	// Start and End are clock readings (durations since the injected
	// stopwatch started).
	Start, End time.Duration
	// Parent indexes the enclosing span in the Spans() slice, -1 for a
	// rank root.
	Parent int
	// Seq is the 1-based collective round for sequenced comm spans
	// (StartSpanSeq), 0 otherwise.
	Seq int64
	// Open marks a span not yet ended (a snapshot taken mid-run).
	Open bool
}

// Spans returns a snapshot of every span in creation order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	for i, sd := range r.spans {
		out[i] = SpanRecord{
			Rank: sd.rank, Name: sd.name,
			Start: sd.start, End: sd.end,
			Parent: int(sd.parent), Seq: sd.seq, Open: sd.open,
		}
	}
	return out
}

// OpenSpans returns the number of spans not yet ended — zero after a
// completed run (the well-formedness tests assert this).
func (r *Recorder) OpenSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, sd := range r.spans {
		if sd.open {
			n++
		}
	}
	return n
}

// Counters returns a copy of the deterministic counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of the observational gauges.
func (r *Recorder) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}
