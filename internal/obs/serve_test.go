package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r, _ := newTestRecorder()
	r.SetLabel("live")
	r.Count("comm.allreduce.calls", 5)
	r.Observe("pairs.split", 12)
	r.SetHealthSource(func() HealthView {
		return HealthView{Live: []int{0, 2}, Lost: []int{1}, Straggling: []int{2}}
	})

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE gbpolar_comm_allreduce_calls counter\n",
		`gbpolar_comm_allreduce_calls{run="live"} 5` + "\n",
		"# TYPE gbpolar_pairs_split histogram\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var doc struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Runs          []struct {
			Label string `json:"label"`
			Live  []int  `json:"live"`
			Lost  []int  `json:"lost"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Label != "live" ||
		len(doc.Runs[0].Live) != 2 || len(doc.Runs[0].Lost) != 1 {
		t.Errorf("healthz runs: %+v", doc.Runs)
	}

	if code, _ = get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// A recorder attached mid-run shows up on the next scrape.
	r2, _ := newTestRecorder()
	r2.SetLabel("second")
	r2.Count("comm.barrier.calls", 1)
	srv.Attach(r2)
	_, body = get(t, base+"/metrics")
	if !strings.Contains(body, `{run="second"} 1`) {
		t.Errorf("attached recorder missing from /metrics:\n%s", body)
	}
}

// TestAttachInvalidatesScrapeRegistry staggers two recorders after the
// first scrape: each Attach must invalidate the cached registry so the
// next /metrics includes every counter registered so far. (Regression:
// a registry cached at first scrape silently dropped late recorders.)
func TestAttachInvalidatesScrapeRegistry(t *testing.T) {
	first, _ := newTestRecorder()
	first.SetLabel("first")
	first.Count("comm.allreduce.calls", 1)
	srv, err := Serve("127.0.0.1:0", first)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Prime the scrape registry cache.
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, `{run="first"} 1`) {
		t.Fatalf("first recorder missing from priming scrape:\n%s", body)
	}

	second, _ := newTestRecorder()
	second.SetLabel("second")
	second.Count("comm.allreduce.calls", 2)
	srv.Attach(second)
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, `{run="second"} 2`) {
		t.Fatalf("recorder attached after first scrape missing:\n%s", body)
	}

	third, _ := newTestRecorder()
	third.SetLabel("third")
	third.Count("comm.allreduce.calls", 3)
	srv.Attach(third)
	_, body := get(t, base+"/metrics")
	for _, want := range []string{`{run="first"} 1`, `{run="second"} 2`, `{run="third"} 3`} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape after second staggered attach lacks %q:\n%s", want, body)
		}
	}
}

// TestMetricsExemplar: an exemplar-tagged observation renders on the
// +Inf bucket line so an SLO spike carries a trace ID to pivot on.
func TestMetricsExemplar(t *testing.T) {
	r, _ := newTestRecorder()
	r.SetLabel("slo")
	r.ObserveGaugeEx("slo.total_us.tenant.acme", 1500, "t-deadbeef")
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, body := get(t, "http://"+srv.Addr()+"/metrics")
	want := `gbpolar_slo_total_us_tenant_acme_bucket{run="slo",le="+Inf"} 1 # {trace_id="t-deadbeef"} 1500`
	if !strings.Contains(body, want) {
		t.Errorf("/metrics lacks exemplar line %q:\n%s", want, body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("definitely:not:an:addr"); err == nil {
		t.Fatal("Serve accepted a malformed address")
	}
}

func TestServerNilSafe(t *testing.T) {
	var s *Server
	s.Attach(nil)
	if s.Addr() != "" {
		t.Error("nil server returned an address")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
