package obs

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"
)

// SortedKeys returns m's keys in ascending order. It is the shared
// sorted-render helper for every map-derived output line in the project
// (perf pricing, gbpol -v, the exporters here): Go randomizes map
// iteration, and printing or accumulating in map order would make output
// differ between identical runs (the PR-2 drift class of bug).
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Summary renders the deterministic text summary: the label, every
// counter, counter-side histogram quantiles, and per-name span call
// counts, all in sorted order. It excludes gauges, gauge-side
// histograms, and timestamps on purpose — two same-seed crash-free runs
// produce byte-identical summaries (asserted by the gb tests).
func (r *Recorder) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	label := r.label
	counters := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := snapshotHists(r.hists)
	// Span counts start from the restored checkpoint base (snapshot.go):
	// a resumed run's Summary then covers the whole logical run, not just
	// the re-executed phases.
	spanCounts := make(map[string]int64, len(r.baseSpans))
	for k, v := range r.baseSpans {
		spanCounts[k] = v
	}
	for _, sd := range r.spans {
		spanCounts[sd.name]++
	}
	r.mu.Unlock()

	var b strings.Builder
	if label != "" {
		fmt.Fprintf(&b, "# %s\n", label)
	}
	for _, k := range SortedKeys(counters) {
		fmt.Fprintf(&b, "counter %s %d\n", k, counters[k])
	}
	for _, h := range hists {
		fmt.Fprintf(&b, "hist %s count=%d p50=%d p90=%d p99=%d\n",
			h.Name, h.Count, h.P50, h.P90, h.P99)
	}
	for _, k := range SortedKeys(spanCounts) {
		fmt.Fprintf(&b, "span %s %d\n", k, spanCounts[k])
	}
	return b.String()
}

// jsonDoc is the WriteJSON document.
type jsonDoc struct {
	Label    string           `json:"label,omitempty"`
	Trace    *TraceContext    `json:"trace,omitempty"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
	Hists    []jsonHist       `json:"hists"`
	GaugeH   []jsonHist       `json:"gauge_hists"`
	Spans    []jsonSpan       `json:"spans"`
}

type jsonSpan struct {
	Rank    int     `json:"rank"`
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
	Parent  int     `json:"parent"`
	Seq     int64   `json:"seq,omitempty"`
}

// jsonHist is one exported histogram: quantiles plus the non-empty
// buckets in ascending bound order (cmd/tracecheck validates both
// invariants).
type jsonHist struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

func toJSONHists(hs []HistogramRecord) []jsonHist {
	out := make([]jsonHist, 0, len(hs))
	for _, h := range hs {
		jh := jsonHist{
			Name: h.Name, Count: h.Count, Sum: h.Sum,
			P50: h.P50, P90: h.P90, P99: h.P99,
			Buckets: []jsonBucket{},
		}
		for _, b := range h.Buckets {
			jh.Buckets = append(jh.Buckets, jsonBucket{Le: b.UpperBound, Count: b.Count})
		}
		out = append(out, jh)
	}
	return out
}

// WriteJSON writes the full recorder state — counters, gauges, and the
// span tree — as one JSON document. encoding/json marshals maps in
// sorted key order, so the counter/gauge sections are deterministic;
// span timings are observational.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	doc := jsonDoc{
		Label:    r.Label(),
		Counters: r.Counters(),
		Gauges:   r.Gauges(),
		Hists:    toJSONHists(r.Histograms()),
		GaugeH:   toJSONHists(r.GaugeHistograms()),
		Spans:    []jsonSpan{},
	}
	if tc := r.Trace(); !tc.IsZero() {
		doc.Trace = &tc
	}
	for _, sp := range r.Spans() {
		if sp.Open {
			continue
		}
		doc.Spans = append(doc.Spans, jsonSpan{
			Rank: sp.Rank, Name: sp.Name,
			StartUs: us(sp.Start), DurUs: us(sp.End - sp.Start),
			Parent: sp.Parent, Seq: sp.Seq,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// traceEvent is one Chrome trace-event (the chrome://tracing and
// Perfetto "trace event format"): ph "X" is a complete slice, ph "M"
// process/thread metadata. Timestamps are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the trace format.
type chromeDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorders' spans as one Chrome trace-event
// JSON document loadable in chrome://tracing or Perfetto. Each recorder
// becomes a process (pid = its position, process_name = its label) and
// each rank a thread, so a clustersim sweep renders as one process row
// per layout with the rank timelines beneath it. Nil recorders are
// skipped.
func WriteChromeTrace(w io.Writer, recs ...*Recorder) error {
	doc := chromeDoc{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for pid, r := range recs {
		if r == nil {
			continue
		}
		label := r.Label()
		if label == "" {
			label = fmt.Sprintf("recorder-%d", pid)
		}
		procArgs := map[string]any{"name": label}
		tc := r.Trace()
		if !tc.IsZero() {
			// The request identity rides on the process metadata (one
			// trace per recorder) so gbtrace and a human in Perfetto can
			// resolve any slice back to its job/tenant/attempt.
			procArgs["trace_id"] = tc.TraceID
			procArgs["job"] = tc.Job
			procArgs["tenant"] = tc.Tenant
			procArgs["attempt"] = tc.Attempt
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: procArgs,
		})
		seenRank := make(map[int]bool)
		for _, sp := range r.Spans() {
			if sp.Open {
				continue
			}
			if !seenRank[sp.Rank] {
				seenRank[sp.Rank] = true
				doc.TraceEvents = append(doc.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: sp.Rank,
					Args: map[string]any{"name": fmt.Sprintf("rank %d", sp.Rank)},
				})
			}
			dur := us(sp.End - sp.Start)
			ev := traceEvent{
				Name: sp.Name, Ph: "X",
				Ts: us(sp.Start), Dur: &dur,
				Pid: pid, Tid: sp.Rank,
			}
			if sp.Seq != 0 {
				ev.Args = map[string]any{"seq": sp.Seq}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// us converts a duration to fractional microseconds (the trace format's
// time unit).
func us(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
