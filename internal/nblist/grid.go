// Package nblist implements the nonbonded-list machinery traditional MD
// packages use (and the paper contrasts octrees against, §II): uniform
// cell grids for O(1) spatial neighbor queries and explicit cutoff pair
// lists whose memory footprint grows cubically with the cutoff. The
// baseline package emulations (Amber/Gromacs/NAMD/Tinker stand-ins) are
// built on these, and the surface sampler uses the cell grid for burial
// culling.
package nblist

import (
	"math"

	"gbpolar/internal/geom"
)

// CellGrid is a uniform spatial hash over a point set: points are binned
// into cubic cells of a fixed size, and neighborhood queries scan the
// 3×3×3 (or larger) block of cells around a query point.
type CellGrid struct {
	origin   geom.Vec3
	cellSize float64
	nx,
	ny,
	nz int
	// CSR layout: cellStart[c]..cellStart[c+1] indexes into pointIdx.
	cellStart []int32
	pointIdx  []int32
	points    []geom.Vec3
}

// NewCellGrid builds a cell grid over the given points with the given cell
// size. A non-positive cell size is replaced by a size that yields ~1
// point per cell. Construction is O(n).
func NewCellGrid(points []geom.Vec3, cellSize float64) *CellGrid {
	g := &CellGrid{points: points}
	if len(points) == 0 {
		g.cellSize = 1
		g.nx, g.ny, g.nz = 1, 1, 1
		g.cellStart = make([]int32, 2)
		return g
	}
	b := geom.BoundPoints(points)
	if cellSize <= 0 {
		vol := math.Max(b.Size().X*b.Size().Y*b.Size().Z, 1e-9)
		cellSize = math.Cbrt(vol / float64(len(points)))
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	g.cellSize = cellSize
	g.origin = b.Min
	s := b.Size()
	g.nx = int(s.X/cellSize) + 1
	g.ny = int(s.Y/cellSize) + 1
	g.nz = int(s.Z/cellSize) + 1
	ncells := g.nx * g.ny * g.nz
	counts := make([]int32, ncells+1)
	cellOf := make([]int32, len(points))
	for i, p := range points {
		c := g.cellIndex(p)
		cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 0; c < ncells; c++ {
		counts[c+1] += counts[c]
	}
	g.cellStart = counts
	g.pointIdx = make([]int32, len(points))
	fill := make([]int32, ncells)
	for i := range points {
		c := cellOf[i]
		g.pointIdx[int(g.cellStart[c])+int(fill[c])] = int32(i)
		fill[c]++
	}
	return g
}

// cellIndex returns the linear cell index containing p (clamped to the
// grid bounds).
func (g *CellGrid) cellIndex(p geom.Vec3) int {
	ix := g.clampAxis(int((p.X-g.origin.X)/g.cellSize), g.nx)
	iy := g.clampAxis(int((p.Y-g.origin.Y)/g.cellSize), g.ny)
	iz := g.clampAxis(int((p.Z-g.origin.Z)/g.cellSize), g.nz)
	return (iz*g.ny+iy)*g.nx + ix
}

func (g *CellGrid) clampAxis(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// NumPoints returns the number of indexed points.
func (g *CellGrid) NumPoints() int { return len(g.points) }

// CellSize returns the grid's cell edge length.
func (g *CellGrid) CellSize() float64 { return g.cellSize }

// ForEachWithin calls fn(i) for every indexed point i with
// |points[i] − p| <= cutoff. fn may return false to stop early; the method
// reports whether the scan ran to completion.
func (g *CellGrid) ForEachWithin(p geom.Vec3, cutoff float64, fn func(i int) bool) bool {
	if len(g.points) == 0 {
		return true
	}
	r := int(math.Ceil(cutoff/g.cellSize)) + 1
	cx := g.clampAxis(int((p.X-g.origin.X)/g.cellSize), g.nx)
	cy := g.clampAxis(int((p.Y-g.origin.Y)/g.cellSize), g.ny)
	cz := g.clampAxis(int((p.Z-g.origin.Z)/g.cellSize), g.nz)
	c2 := cutoff * cutoff
	for iz := max(0, cz-r); iz <= min(g.nz-1, cz+r); iz++ {
		for iy := max(0, cy-r); iy <= min(g.ny-1, cy+r); iy++ {
			for ix := max(0, cx-r); ix <= min(g.nx-1, cx+r); ix++ {
				c := (iz*g.ny+iy)*g.nx + ix
				for k := g.cellStart[c]; k < g.cellStart[c+1]; k++ {
					i := int(g.pointIdx[k])
					if g.points[i].Dist2(p) <= c2 {
						if !fn(i) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// CountWithin returns the number of indexed points within cutoff of p.
func (g *CellGrid) CountWithin(p geom.Vec3, cutoff float64) int {
	n := 0
	g.ForEachWithin(p, cutoff, func(int) bool { n++; return true })
	return n
}

// MemoryBytes estimates the grid's memory footprint in bytes (excluding
// the caller-owned point slice).
func (g *CellGrid) MemoryBytes() int64 {
	return int64(len(g.cellStart))*4 + int64(len(g.pointIdx))*4
}
