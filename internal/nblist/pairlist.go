package nblist

import (
	"fmt"

	"gbpolar/internal/geom"
)

// PairList is an explicit nonbonded list: for every atom, the indices of
// all atoms within the cutoff. This is the data structure Amber, NAMD and
// Gromacs build (§II "Octrees vs. Nblists"): its size grows linearly with
// the atom count and cubically with the cutoff, which is exactly why those
// packages run out of memory on multi-million-atom molecules at realistic
// cutoffs.
type PairList struct {
	Cutoff float64
	// CSR layout: Start[i]..Start[i+1] indexes into Neighbors, holding the
	// neighbor indices j > i (half list: each pair stored once).
	Start     []int32
	Neighbors []int32
}

// ErrMemoryLimit is returned by BuildPairList when the list would exceed
// the configured memory budget — the emulation of an MD package running
// out of memory on a large molecule.
type ErrMemoryLimit struct {
	NeededBytes, LimitBytes int64
}

func (e *ErrMemoryLimit) Error() string {
	return fmt.Sprintf("nblist: pair list needs %d bytes, exceeds limit %d (out of memory)",
		e.NeededBytes, e.LimitBytes)
}

// BuildPairList constructs the half pair list of all atom pairs within the
// cutoff. If memLimitBytes > 0 and the neighbor array would exceed it, an
// *ErrMemoryLimit is returned instead. Construction is O(n · c³ρ) via a
// cell grid.
func BuildPairList(points []geom.Vec3, cutoff float64, memLimitBytes int64) (*PairList, error) {
	n := len(points)
	pl := &PairList{Cutoff: cutoff, Start: make([]int32, n+1)}
	grid := NewCellGrid(points, cutoff)
	// First pass: count.
	counts := make([]int32, n)
	total := int64(0)
	for i := 0; i < n; i++ {
		c := int32(0)
		grid.ForEachWithin(points[i], cutoff, func(j int) bool {
			if j > i {
				c++
			}
			return true
		})
		counts[i] = c
		total += int64(c)
		if memLimitBytes > 0 && total*4 > memLimitBytes {
			return nil, &ErrMemoryLimit{NeededBytes: total * 4, LimitBytes: memLimitBytes}
		}
	}
	for i := 0; i < n; i++ {
		pl.Start[i+1] = pl.Start[i] + counts[i]
	}
	pl.Neighbors = make([]int32, total)
	fill := make([]int32, n)
	for i := 0; i < n; i++ {
		grid.ForEachWithin(points[i], cutoff, func(j int) bool {
			if j > i {
				pl.Neighbors[pl.Start[i]+fill[i]] = int32(j)
				fill[i]++
			}
			return true
		})
	}
	return pl, nil
}

// NumPairs returns the number of stored (half) pairs.
func (pl *PairList) NumPairs() int { return len(pl.Neighbors) }

// ForEachPair calls fn(i, j) for every stored pair with i < j.
func (pl *PairList) ForEachPair(fn func(i, j int)) {
	for i := 0; i+1 < len(pl.Start); i++ {
		for k := pl.Start[i]; k < pl.Start[i+1]; k++ {
			fn(i, int(pl.Neighbors[k]))
		}
	}
}

// NeighborsOf returns the stored neighbor indices (j > i) of atom i.
func (pl *PairList) NeighborsOf(i int) []int32 {
	return pl.Neighbors[pl.Start[i]:pl.Start[i+1]]
}

// MemoryBytes returns the memory footprint of the pair list in bytes.
// This is the quantity that grows cubically with the cutoff.
func (pl *PairList) MemoryBytes() int64 {
	return int64(len(pl.Start))*4 + int64(len(pl.Neighbors))*4
}
