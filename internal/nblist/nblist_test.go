package nblist

import (
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
)

func randomPoints(n int, spread float64, seed int64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*spread, rng.Float64()*spread, rng.Float64()*spread)
	}
	return pts
}

// bruteWithin returns indices within cutoff of p, brute force.
func bruteWithin(pts []geom.Vec3, p geom.Vec3, cutoff float64) map[int]bool {
	out := map[int]bool{}
	for i, q := range pts {
		if q.Dist(p) <= cutoff {
			out[i] = true
		}
	}
	return out
}

func TestCellGridMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 20, 1)
	grid := NewCellGrid(pts, 3)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p := geom.V(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20)
		cutoff := 0.5 + rng.Float64()*6
		want := bruteWithin(pts, p, cutoff)
		got := map[int]bool{}
		grid.ForEachWithin(p, cutoff, func(i int) bool { got[i] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i] {
				t.Fatalf("trial %d: missing index %d", trial, i)
			}
		}
	}
}

func TestCellGridAutoCellSize(t *testing.T) {
	pts := randomPoints(100, 10, 3)
	grid := NewCellGrid(pts, 0)
	if grid.CellSize() <= 0 {
		t.Fatalf("auto cell size = %v", grid.CellSize())
	}
	if got := grid.CountWithin(pts[0], 1e-9); got < 1 {
		t.Errorf("point not found in its own cell: %d", got)
	}
}

func TestCellGridEmpty(t *testing.T) {
	grid := NewCellGrid(nil, 1)
	if grid.NumPoints() != 0 {
		t.Errorf("NumPoints = %d", grid.NumPoints())
	}
	called := false
	grid.ForEachWithin(geom.V(0, 0, 0), 100, func(int) bool { called = true; return true })
	if called {
		t.Error("callback on empty grid")
	}
}

func TestCellGridEarlyStop(t *testing.T) {
	pts := randomPoints(100, 5, 4)
	grid := NewCellGrid(pts, 1)
	n := 0
	complete := grid.ForEachWithin(geom.V(2.5, 2.5, 2.5), 10, func(int) bool {
		n++
		return n < 5
	})
	if complete {
		t.Error("scan reported complete despite early stop")
	}
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}

func TestCellGridCoincidentPoints(t *testing.T) {
	pts := []geom.Vec3{{}, {}, {}, {}}
	grid := NewCellGrid(pts, 1)
	if got := grid.CountWithin(geom.Vec3{}, 0.1); got != 4 {
		t.Errorf("CountWithin = %d, want 4", got)
	}
}

func TestPairListMatchesBruteForce(t *testing.T) {
	pts := randomPoints(300, 15, 5)
	const cutoff = 4.0
	pl, err := BuildPairList(pts, cutoff, 0)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ i, j int }
	got := map[pair]bool{}
	pl.ForEachPair(func(i, j int) {
		if i >= j {
			t.Fatalf("pair (%d,%d) not half-ordered", i, j)
		}
		got[pair{i, j}] = true
	})
	want := 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= cutoff {
				want++
				if !got[pair{i, j}] {
					t.Fatalf("missing pair (%d,%d)", i, j)
				}
			}
		}
	}
	if len(got) != want || pl.NumPairs() != want {
		t.Errorf("pairs = %d (NumPairs %d), want %d", len(got), pl.NumPairs(), want)
	}
}

func TestPairListNeighborsOf(t *testing.T) {
	pts := []geom.Vec3{{}, geom.V(1, 0, 0), geom.V(10, 0, 0)}
	pl, err := BuildPairList(pts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb := pl.NeighborsOf(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Errorf("NeighborsOf(0) = %v", nb)
	}
	if len(pl.NeighborsOf(2)) != 0 {
		t.Errorf("NeighborsOf(2) = %v", pl.NeighborsOf(2))
	}
}

func TestPairListMemoryLimit(t *testing.T) {
	pts := randomPoints(500, 5, 6) // dense: many pairs
	_, err := BuildPairList(pts, 5, 128)
	if err == nil {
		t.Fatal("expected memory-limit error")
	}
	if _, ok := err.(*ErrMemoryLimit); !ok {
		t.Fatalf("error type = %T", err)
	}
}

// The paper's §II claim: nblist memory grows ~cubically with the cutoff
// while octree memory is cutoff-independent. Verify the cubic growth.
func TestPairListCubicGrowthWithCutoff(t *testing.T) {
	pts := randomPoints(2000, 30, 7)
	m1, err := BuildPairList(pts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildPairList(pts, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(m2.NumPairs()) / float64(math.Max(1, float64(m1.NumPairs())))
	// Doubling the cutoff should multiply pairs by ≈8 (allow 5–12 for
	// boundary effects).
	if ratio < 5 || ratio > 12 {
		t.Errorf("pair growth ratio = %v, want ≈8", ratio)
	}
	if m2.MemoryBytes() <= m1.MemoryBytes() {
		t.Error("memory did not grow with cutoff")
	}
}
