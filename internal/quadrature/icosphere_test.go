package quadrature

import (
	"math"
	"testing"
)

func TestIcosphereCounts(t *testing.T) {
	// Level 0: icosahedron (12 vertices, 20 triangles). Each level
	// quadruples triangles; V = 10·4^L + 2 by Euler's formula.
	for level := 0; level <= 4; level++ {
		m := Icosphere(level)
		wantT := 20 * pow4(level)
		wantV := 10*pow4(level) + 2
		if m.NumTriangles() != wantT {
			t.Errorf("level %d: %d triangles, want %d", level, m.NumTriangles(), wantT)
		}
		if len(m.Vertices) != wantV {
			t.Errorf("level %d: %d vertices, want %d", level, len(m.Vertices), wantV)
		}
	}
}

func pow4(n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= 4
	}
	return p
}

func TestIcosphereVerticesOnSphere(t *testing.T) {
	m := Icosphere(3)
	for i, v := range m.Vertices {
		if math.Abs(v.Norm()-1) > 1e-14 {
			t.Fatalf("vertex %d has norm %v", i, v.Norm())
		}
	}
}

func TestIcosphereAreaConvergesTo4Pi(t *testing.T) {
	prevErr := math.Inf(1)
	for level := 0; level <= 4; level++ {
		m := Icosphere(level)
		err := math.Abs(m.Area() - 4*math.Pi)
		if err >= prevErr {
			t.Errorf("level %d: area error %v did not decrease (prev %v)", level, err, prevErr)
		}
		prevErr = err
	}
	// Level 4 should be within 0.2% of 4π (faceting error is O(h²)).
	if rel := prevErr / (4 * math.Pi); rel > 2e-3 {
		t.Errorf("level 4 relative area error = %v", rel)
	}
}

func TestIcosphereOutwardOrientation(t *testing.T) {
	m := Icosphere(2)
	for i, tr := range m.Triangles {
		a, b, c := m.Vertices[tr.A], m.Vertices[tr.B], m.Vertices[tr.C]
		n := TriangleNormal(a, b, c)
		centroid := a.Add(b).Add(c).Scale(1.0 / 3)
		if n.Dot(centroid) <= 0 {
			t.Fatalf("triangle %d is inward-oriented", i)
		}
	}
}

func TestIcosphereWatertight(t *testing.T) {
	// Every edge must be shared by exactly two triangles.
	m := Icosphere(2)
	type edge struct{ lo, hi int }
	count := map[edge]int{}
	addEdge := func(a, b int) {
		e := edge{a, b}
		if a > b {
			e = edge{b, a}
		}
		count[e]++
	}
	for _, tr := range m.Triangles {
		addEdge(tr.A, tr.B)
		addEdge(tr.B, tr.C)
		addEdge(tr.C, tr.A)
	}
	for e, c := range count {
		if c != 2 {
			t.Fatalf("edge %v shared by %d triangles", e, c)
		}
	}
}

func TestIcosphereNegativeLevel(t *testing.T) {
	m := Icosphere(-3)
	if m.NumTriangles() != 20 {
		t.Errorf("negative level should clamp to icosahedron, got %d triangles", m.NumTriangles())
	}
}

// Surface quadrature sanity: integrating the function f(p) = p·n over the
// unit sphere with Dunavant points on each (planar) triangle approximates
// the divergence-theorem volume 3·V = 4π... i.e. flux of identity field.
func TestSphereFluxIntegral(t *testing.T) {
	m := Icosphere(3)
	rule, err := Dunavant(2)
	if err != nil {
		t.Fatal(err)
	}
	flux := 0.0
	for _, tr := range m.Triangles {
		a, b, c := m.Vertices[tr.A], m.Vertices[tr.B], m.Vertices[tr.C]
		n := TriangleNormal(a, b, c)
		for _, qp := range rule.ForTriangle(nil, a, b, c) {
			flux += qp.W * qp.P.Dot(n)
		}
	}
	// ∮ r·n dS = 3·Volume → 4π for the unit ball (up to faceting error:
	// the inscribed polyhedron underestimates by O(h²), ≈0.9% at level 3).
	if math.Abs(flux-4*math.Pi)/(4*math.Pi) > 1.5e-2 {
		t.Errorf("flux = %v, want ≈ %v", flux, 4*math.Pi)
	}
}
