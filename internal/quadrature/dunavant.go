package quadrature

import (
	"fmt"

	"gbpolar/internal/geom"
)

// TrianglePoint is one node of a triangle quadrature rule in barycentric
// coordinates (L1, L2, L3) with L1+L2+L3 = 1, and a weight. Weights of a
// rule sum to 1, so the integral of f over a triangle T with area |T| is
// approximated by |T| · Σ w_i f(x_i).
type TrianglePoint struct {
	L1, L2, L3 float64
	W          float64
}

// TriangleRule is a symmetric Gaussian quadrature rule on the triangle.
type TriangleRule struct {
	Degree int // exact for polynomials up to this total degree
	Points []TrianglePoint
}

// centroidPoint returns the centroid node with weight w.
func centroidPoint(w float64) []TrianglePoint {
	return []TrianglePoint{{1.0 / 3, 1.0 / 3, 1.0 / 3, w}}
}

// perm3 returns the 3 permutations of the barycentric point (a, b, b),
// each with weight w.
func perm3(a, b, w float64) []TrianglePoint {
	return []TrianglePoint{
		{a, b, b, w},
		{b, a, b, w},
		{b, b, a, w},
	}
}

// perm6 returns the 6 permutations of the barycentric point (a, b, c),
// each with weight w.
func perm6(a, b, c, w float64) []TrianglePoint {
	return []TrianglePoint{
		{a, b, c, w}, {a, c, b, w},
		{b, a, c, w}, {b, c, a, w},
		{c, a, b, w}, {c, b, a, w},
	}
}

// dunavantRules holds the Dunavant (1985) symmetric rules, degrees 1–8.
// Weights are normalized to sum to 1 (area-relative).
var dunavantRules = map[int]TriangleRule{
	1: {Degree: 1, Points: centroidPoint(1)},
	2: {Degree: 2, Points: perm3(2.0/3, 1.0/6, 1.0/3)},
	3: {Degree: 3, Points: append(
		centroidPoint(-0.5625),
		perm3(0.6, 0.2, 25.0/48)...)},
	4: {Degree: 4, Points: append(
		perm3(0.108103018168070, 0.445948490915965, 0.223381589678011),
		perm3(0.816847572980459, 0.091576213509771, 0.109951743655322)...)},
	5: {Degree: 5, Points: concat(
		centroidPoint(0.225),
		perm3(0.059715871789770, 0.470142064105115, 0.132394152788506),
		perm3(0.797426985353087, 0.101286507323456, 0.125939180544827))},
	6: {Degree: 6, Points: concat(
		perm3(0.501426509658179, 0.249286745170910, 0.116786275726379),
		perm3(0.873821971016996, 0.063089014491502, 0.050844906370207),
		perm6(0.053145049844817, 0.310352451033784, 0.636502499121399, 0.082851075618374))},
	7: {Degree: 7, Points: concat(
		centroidPoint(-0.149570044467682),
		perm3(0.479308067841920, 0.260345966079040, 0.175615257433208),
		perm3(0.869739794195568, 0.065130102902216, 0.053347235608838),
		perm6(0.048690315425316, 0.312865496004874, 0.638444188569810, 0.077113760890257))},
	8: {Degree: 8, Points: concat(
		centroidPoint(0.1443156076777871),
		perm3(0.0814148234145540, 0.4592925882927232, 0.0950916342672846),
		perm3(0.6588613844964800, 0.1705693077517602, 0.1032173705347183),
		perm3(0.8989055433659380, 0.0505472283170310, 0.0324584976231980),
		perm6(0.0083947774099580, 0.2631128296346381, 0.7284923929554043, 0.0272303141744350))},
}

func concat(groups ...[]TrianglePoint) []TrianglePoint {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]TrianglePoint, 0, total)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// Dunavant returns the Dunavant symmetric triangle quadrature rule exact
// for polynomials up to the given total degree (1–8). Requesting a degree
// outside that range returns an error.
func Dunavant(degree int) (TriangleRule, error) {
	r, ok := dunavantRules[degree]
	if !ok {
		return TriangleRule{}, fmt.Errorf("quadrature: no Dunavant rule for degree %d (have 1-8)", degree)
	}
	return r, nil
}

// NumPoints returns the number of nodes in the rule.
func (r TriangleRule) NumPoints() int { return len(r.Points) }

// QuadPoint is a Cartesian quadrature point on a concrete triangle: a
// position and an absolute weight (already multiplied by the triangle
// area), ready to be summed as Σ W·f(P).
type QuadPoint struct {
	P geom.Vec3
	W float64
}

// ForTriangle maps the rule onto the triangle (a, b, c) in 3-D, returning
// Cartesian quadrature points whose weights incorporate the triangle area.
// The points are appended to dst (which may be nil) and returned.
func (r TriangleRule) ForTriangle(dst []QuadPoint, a, b, c geom.Vec3) []QuadPoint {
	area := TriangleArea(a, b, c)
	for _, p := range r.Points {
		pos := a.Scale(p.L1).Add(b.Scale(p.L2)).Add(c.Scale(p.L3))
		dst = append(dst, QuadPoint{P: pos, W: p.W * area})
	}
	return dst
}

// TriangleArea returns the area of the 3-D triangle (a, b, c).
func TriangleArea(a, b, c geom.Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Norm() / 2
}

// TriangleNormal returns the unit normal of the triangle (a, b, c) with
// orientation given by the right-hand rule on the vertex order.
func TriangleNormal(a, b, c geom.Vec3) geom.Vec3 {
	return b.Sub(a).Cross(c.Sub(a)).Unit()
}
