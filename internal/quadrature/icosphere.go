package quadrature

import (
	"math"

	"gbpolar/internal/geom"
)

// Triangle indexes three vertices of a mesh.
type Triangle struct {
	A, B, C int
}

// SphereMesh is a triangulation of the unit sphere. Vertices lie exactly on
// the sphere; triangles are consistently outward-oriented.
type SphereMesh struct {
	Vertices  []geom.Vec3
	Triangles []Triangle
}

// Icosphere returns the unit-sphere triangulation obtained by subdividing a
// regular icosahedron `level` times (level 0 = the icosahedron itself, 20
// triangles; each level quadruples the triangle count). Every subdivision
// vertex is re-projected onto the sphere.
func Icosphere(level int) SphereMesh {
	if level < 0 {
		level = 0
	}
	m := icosahedron()
	for i := 0; i < level; i++ {
		m = m.subdivide()
	}
	return m
}

// icosahedron returns the regular icosahedron inscribed in the unit sphere
// with outward-oriented triangles.
func icosahedron() SphereMesh {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []geom.Vec3{
		{X: -1, Y: phi}, {X: 1, Y: phi}, {X: -1, Y: -phi}, {X: 1, Y: -phi},
		{Y: -1, Z: phi}, {Y: 1, Z: phi}, {Y: -1, Z: -phi}, {Y: 1, Z: -phi},
		{Z: -1, X: phi}, {Z: 1, X: phi}, {Z: -1, X: -phi}, {Z: 1, X: -phi},
	}
	verts := make([]geom.Vec3, len(raw))
	for i, v := range raw {
		verts[i] = v.Unit()
	}
	tris := []Triangle{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	return SphereMesh{Vertices: verts, Triangles: tris}
}

// subdivide splits each triangle into 4 by edge midpoints, re-projecting
// new vertices onto the unit sphere. Midpoints are shared between adjacent
// triangles via an edge cache so the mesh stays watertight.
func (m SphereMesh) subdivide() SphereMesh {
	type edge struct{ lo, hi int }
	cache := make(map[edge]int, len(m.Triangles)*3/2)
	verts := append([]geom.Vec3(nil), m.Vertices...)
	midpoint := func(a, b int) int {
		e := edge{a, b}
		if a > b {
			e = edge{b, a}
		}
		if idx, ok := cache[e]; ok {
			return idx
		}
		mid := verts[a].Add(verts[b]).Scale(0.5).Unit()
		verts = append(verts, mid)
		cache[e] = len(verts) - 1
		return len(verts) - 1
	}
	tris := make([]Triangle, 0, len(m.Triangles)*4)
	for _, t := range m.Triangles {
		ab := midpoint(t.A, t.B)
		bc := midpoint(t.B, t.C)
		ca := midpoint(t.C, t.A)
		tris = append(tris,
			Triangle{t.A, ab, ca},
			Triangle{t.B, bc, ab},
			Triangle{t.C, ca, bc},
			Triangle{ab, bc, ca},
		)
	}
	return SphereMesh{Vertices: verts, Triangles: tris}
}

// Area returns the total area of the mesh triangles (approaches 4π for the
// unit sphere as the level grows).
func (m SphereMesh) Area() float64 {
	s := 0.0
	for _, t := range m.Triangles {
		s += TriangleArea(m.Vertices[t.A], m.Vertices[t.B], m.Vertices[t.C])
	}
	return s
}

// NumTriangles returns the triangle count.
func (m SphereMesh) NumTriangles() int { return len(m.Triangles) }
