package quadrature

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
)

// mustRule fetches a Dunavant rule the tests know is valid.
func mustRule(t *testing.T, degree int) TriangleRule {
	t.Helper()
	r, err := Dunavant(degree)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// factorial for small n.
func fact(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// Exact integral of x^p y^q over the reference triangle with vertices
// (0,0), (1,0), (0,1): p! q! / (p+q+2)!.
func monomialIntegral(p, q int) float64 {
	return fact(p) * fact(q) / fact(p+q+2)
}

func TestDunavantWeightsSumToOne(t *testing.T) {
	for deg := 1; deg <= 8; deg++ {
		r := mustRule(t, deg)
		s := 0.0
		for _, p := range r.Points {
			s += p.W
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("degree %d: weights sum to %.15f", deg, s)
		}
	}
}

func TestDunavantBarycentricValid(t *testing.T) {
	for deg := 1; deg <= 8; deg++ {
		r := mustRule(t, deg)
		for i, p := range r.Points {
			if math.Abs(p.L1+p.L2+p.L3-1) > 1e-12 {
				t.Errorf("degree %d point %d: barycentric coords sum to %v", deg, i, p.L1+p.L2+p.L3)
			}
		}
	}
}

func TestDunavantPointCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 3, 3: 4, 4: 6, 5: 7, 6: 12, 7: 13, 8: 16}
	for deg, n := range want {
		if got := mustRule(t, deg).NumPoints(); got != n {
			t.Errorf("degree %d: %d points, want %d", deg, got, n)
		}
	}
}

// The degree-d rule must integrate all monomials x^p y^q with p+q <= d
// exactly over the reference triangle.
func TestDunavantExactness(t *testing.T) {
	a := geom.V(0, 0, 0)
	b := geom.V(1, 0, 0)
	c := geom.V(0, 1, 0)
	for deg := 1; deg <= 8; deg++ {
		r := mustRule(t, deg)
		qps := r.ForTriangle(nil, a, b, c)
		for p := 0; p <= deg; p++ {
			for q := 0; p+q <= deg; q++ {
				got := 0.0
				for _, qp := range qps {
					got += qp.W * math.Pow(qp.P.X, float64(p)) * math.Pow(qp.P.Y, float64(q))
				}
				want := monomialIntegral(p, q)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("degree %d rule, monomial x^%d y^%d: got %.15f want %.15f", deg, p, q, got, want)
				}
			}
		}
	}
}

func TestDunavantInvalidDegree(t *testing.T) {
	if _, err := Dunavant(0); err == nil {
		t.Error("degree 0 should error")
	}
	if _, err := Dunavant(9); err == nil {
		t.Error("degree 9 should error")
	}
}

func TestForTriangleScalesWithArea(t *testing.T) {
	r := mustRule(t, 2)
	a := geom.V(0, 0, 0)
	b := geom.V(2, 0, 0)
	c := geom.V(0, 2, 0)
	qps := r.ForTriangle(nil, a, b, c)
	total := 0.0
	for _, qp := range qps {
		total += qp.W
	}
	if math.Abs(total-2) > 1e-12 { // area of the 2×2 right triangle
		t.Errorf("total weight = %v, want 2", total)
	}
}

func TestTriangleAreaNormal(t *testing.T) {
	a := geom.V(0, 0, 0)
	b := geom.V(1, 0, 0)
	c := geom.V(0, 1, 0)
	if got := TriangleArea(a, b, c); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("area = %v", got)
	}
	n := TriangleNormal(a, b, c)
	if n.Dist(geom.V(0, 0, 1)) > 1e-15 {
		t.Errorf("normal = %v", n)
	}
	// Reversing orientation flips the normal.
	n2 := TriangleNormal(a, c, b)
	if n2.Dist(geom.V(0, 0, -1)) > 1e-15 {
		t.Errorf("reversed normal = %v", n2)
	}
}

// Quadrature on a 3-D embedded triangle (not axis-aligned) still integrates
// constants to the area.
func TestForTriangle3D(t *testing.T) {
	a := geom.V(1, 2, 3)
	b := geom.V(4, 2, -1)
	c := geom.V(0, 5, 2)
	area := TriangleArea(a, b, c)
	for deg := 1; deg <= 8; deg++ {
		qps := mustRule(t, deg).ForTriangle(nil, a, b, c)
		s := 0.0
		for _, qp := range qps {
			s += qp.W
		}
		if math.Abs(s-area) > 1e-12*area {
			t.Errorf("degree %d: Σw = %v, area = %v", deg, s, area)
		}
	}
}
