// Package quadrature provides the numerical-integration building blocks
// used to sample the molecular surface: 1-D Gauss–Legendre rules, Dunavant
// symmetric Gaussian quadrature rules for triangles (Dunavant 1985, the
// rules the paper cites via [11]), and icosphere tessellations of the unit
// sphere.
package quadrature

import "math"

// GaussLegendre returns the nodes and weights of the n-point Gauss–Legendre
// rule on [-1, 1]. Nodes are computed by Newton iteration on the Legendre
// polynomial with the classical Chebyshev initial guess; the rule is exact
// for polynomials of degree 2n−1.
func GaussLegendre(n int) (nodes, weights []float64) {
	if n <= 0 {
		return nil, nil
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess: Chebyshev points.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			// Evaluate Legendre P_n(x) and derivative via recurrence.
			p0, p1 := 1.0, x
			for k := 2; k <= n; k++ {
				p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
			}
			if n == 1 {
				p0, p1 = 1.0, x
			}
			pp = float64(n) * (x*p1 - p0) / (x*x - 1)
			dx := p1 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}

// GaussLegendreOn returns the n-point Gauss–Legendre rule mapped to [a, b].
func GaussLegendreOn(n int, a, b float64) (nodes, weights []float64) {
	x, w := GaussLegendre(n)
	half, mid := (b-a)/2, (a+b)/2
	for i := range x {
		x[i] = mid + half*x[i]
		w[i] *= half
	}
	return x, w
}

// Integrate1D approximates the integral of f over [a,b] with an n-point
// Gauss–Legendre rule.
func Integrate1D(f func(float64) float64, a, b float64, n int) float64 {
	x, w := GaussLegendreOn(n, a, b)
	s := 0.0
	for i := range x {
		s += w[i] * f(x[i])
	}
	return s
}
