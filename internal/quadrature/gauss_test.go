package quadrature

import (
	"math"
	"testing"
)

func TestGaussLegendreWeightsSum(t *testing.T) {
	for n := 1; n <= 20; n++ {
		_, w := GaussLegendre(n)
		s := 0.0
		for _, wi := range w {
			s += wi
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("n=%d: weights sum to %v, want 2", n, s)
		}
	}
}

func TestGaussLegendreSymmetry(t *testing.T) {
	for n := 1; n <= 12; n++ {
		x, w := GaussLegendre(n)
		for i := 0; i < n/2; i++ {
			if math.Abs(x[i]+x[n-1-i]) > 1e-13 {
				t.Errorf("n=%d: nodes not symmetric: %v vs %v", n, x[i], x[n-1-i])
			}
			if math.Abs(w[i]-w[n-1-i]) > 1e-13 {
				t.Errorf("n=%d: weights not symmetric", n)
			}
		}
	}
}

func TestGaussLegendreKnownNodes(t *testing.T) {
	// 2-point rule: ±1/√3, weights 1.
	x, w := GaussLegendre(2)
	if math.Abs(x[0]+1/math.Sqrt(3)) > 1e-14 || math.Abs(x[1]-1/math.Sqrt(3)) > 1e-14 {
		t.Errorf("2-point nodes = %v", x)
	}
	if math.Abs(w[0]-1) > 1e-14 || math.Abs(w[1]-1) > 1e-14 {
		t.Errorf("2-point weights = %v", w)
	}
	// 3-point rule: 0, ±√(3/5); weights 8/9, 5/9.
	x, w = GaussLegendre(3)
	if math.Abs(x[1]) > 1e-14 {
		t.Errorf("3-point middle node = %v", x[1])
	}
	if math.Abs(x[2]-math.Sqrt(0.6)) > 1e-14 {
		t.Errorf("3-point node = %v", x[2])
	}
	if math.Abs(w[1]-8.0/9) > 1e-14 || math.Abs(w[0]-5.0/9) > 1e-14 {
		t.Errorf("3-point weights = %v", w)
	}
}

// An n-point rule must integrate polynomials of degree 2n−1 exactly.
func TestGaussLegendreExactness(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for deg := 0; deg <= 2*n-1; deg++ {
			got := Integrate1D(func(x float64) float64 { return math.Pow(x, float64(deg)) }, -1, 1, n)
			want := 0.0
			if deg%2 == 0 {
				want = 2 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d deg=%d: got %v want %v", n, deg, got, want)
			}
		}
	}
}

func TestGaussLegendreOnInterval(t *testing.T) {
	// ∫₀^π sin = 2.
	got := Integrate1D(math.Sin, 0, math.Pi, 12)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("∫sin = %v", got)
	}
	// ∫₁³ 1/x = ln 3.
	got = Integrate1D(func(x float64) float64 { return 1 / x }, 1, 3, 20)
	if math.Abs(got-math.Log(3)) > 1e-10 {
		t.Errorf("∫1/x = %v", got)
	}
}

func TestGaussLegendreEdgeCases(t *testing.T) {
	x, w := GaussLegendre(0)
	if x != nil || w != nil {
		t.Error("n=0 should return nil")
	}
	x, w = GaussLegendre(1)
	if len(x) != 1 || x[0] != 0 || w[0] != 2 {
		t.Errorf("1-point rule = %v %v", x, w)
	}
}
