package bench

import (
	"fmt"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/perf"
	"gbpolar/internal/simmpi"
)

// scaleResult extrapolates a scaled-molecule run to the full molecule
// size: per-core operation counts and communication volumes both grow
// (near-)linearly with the atom count for the octree programs, so a run
// on Scale×M atoms is priced as factor× the measured quantities. The
// logarithmic tree-depth growth this drops is < 15% over two decades and
// identical across the compared layouts, so speedup shapes are preserved.
//
// Per-core deviations from the mean are additionally shrunk by √factor:
// a static segment at full size aggregates ~factor× more leaves, so its
// relative cost deviation contracts like a sample mean (at 1% scale a
// segment's lumpiness is ~10× what the full molecule would show, which
// would otherwise hand the work-stealing layouts an artificial
// advantage).
func scaleResult(res *gb.Result, factor float64) *gb.Result {
	out := *res
	out.PerCoreOps = make([]int64, len(res.PerCoreOps))
	mean := 0.0
	for _, ops := range res.PerCoreOps {
		mean += float64(ops)
	}
	mean /= float64(len(res.PerCoreOps))
	shrink := math.Sqrt(factor)
	for i, ops := range res.PerCoreOps {
		adj := mean + (float64(ops)-mean)/shrink
		out.PerCoreOps[i] = int64(adj * factor)
	}
	out.Traffic.P2PBytes = int64(float64(res.Traffic.P2PBytes) * factor)
	out.Traffic.Collectives = make(map[simmpi.CollectiveKind]simmpi.CollectiveStat,
		len(res.Traffic.Collectives))
	for k, st := range res.Traffic.Collectives {
		st.Bytes = int64(float64(st.Bytes) * factor)
		out.Traffic.Collectives[k] = st
	}
	return &out
}

// btvRuns executes the BTV workload (at o.Scale of its 6M atoms) for one
// node count and returns the priced (shape, result) pairs for OCT_MPI
// (12 ranks/node × 1 thread) and OCT_MPI+CILK (2 ranks/node × 6 threads).
type scaledRun struct {
	res      *gb.Result
	shape    perf.RunShape
	priced   perf.Breakdown
	min, max float64
}

func btvRun(o Options, sys *gb.System, fullAtoms int, P, p int, seed int64) (*scaledRun, error) {
	var res *gb.Result
	var err error
	if p == 1 {
		res, err = sys.RunMPI(P)
	} else {
		res, err = sys.RunHybrid(P, p)
	}
	if err != nil {
		return nil, err
	}
	factor := float64(fullAtoms) / float64(sys.NumAtoms())
	scaled := scaleResult(res, factor)
	shape := perf.RunShape{
		Processes:         P,
		ThreadsPerProcess: p,
		DataBytes:         int64(float64(sys.DataBytes()) * factor),
	}
	priced, err := o.Machine.Price(o.Cal, shape, scaled.PerCoreOps, scaled.Traffic)
	if err != nil {
		return nil, err
	}
	minS, maxS, err := o.Machine.PriceNoisy(o.Cal, shape, scaled.PerCoreOps, scaled.Traffic, o.Runs, seed)
	if err != nil {
		return nil, err
	}
	return &scaledRun{res: res, shape: shape, priced: priced, min: minS, max: maxS}, nil
}

// btvNodeCounts is the Fig. 5/6 sweep (×12 cores each).
var btvNodeCounts = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36}

// btvSystem prepares the scaled BTV system once per options.
func btvSystem(o Options) (*gb.System, int, error) {
	fullAtoms := molecule.BTVAtoms
	scaledAtoms := int(o.Scale * float64(fullAtoms))
	if scaledAtoms < 2000 {
		scaledAtoms = 2000
	}
	mol := molecule.ScaledBTV(scaledAtoms)
	entry, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, 0, err
	}
	return entry.sys, fullAtoms, nil
}

// fig5 reproduces Figure 5: speedup w.r.t. one node (T_P/T_12) for
// OCT_MPI and OCT_MPI+CILK on BTV.
func fig5(o Options) (*Table, error) {
	sys, fullAtoms, err := btvSystem(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Fig. 5",
		Title: "Scalability of OCT_MPI and OCT_MPI+CILK: speedup w.r.t. one node (×12 cores), BTV",
		Notes: []string{fmt.Sprintf(
			"BTV run at %d of its %d atoms and extrapolated (DESIGN.md §2); ε = 0.9/0.9",
			sys.NumAtoms(), fullAtoms)},
		Header: []string{"Nodes", "Cores", "T OCT_MPI", "T OCT_MPI+CILK", "Speedup OCT_MPI", "Speedup OCT_MPI+CILK"},
	}
	var base struct{ mpi, hyb float64 }
	for _, nodes := range btvNodeCounts {
		mpiRun, err := btvRun(o, sys, fullAtoms, 12*nodes, 1, int64(nodes))
		if err != nil {
			return nil, err
		}
		hybRun, err := btvRun(o, sys, fullAtoms, 2*nodes, 6, int64(nodes)+1000)
		if err != nil {
			return nil, err
		}
		if nodes == 1 {
			base.mpi = mpiRun.priced.TotalSeconds
			base.hyb = hybRun.priced.TotalSeconds
		}
		t.AddRow(fmt.Sprintf("%d", nodes), fmt.Sprintf("%d", 12*nodes),
			fmtSeconds(mpiRun.priced.TotalSeconds), fmtSeconds(hybRun.priced.TotalSeconds),
			fmt.Sprintf("%.2f", base.mpi/mpiRun.priced.TotalSeconds),
			fmt.Sprintf("%.2f", base.hyb/hybRun.priced.TotalSeconds))
	}
	return t, nil
}

// fig6 reproduces Figure 6: the min/max running-time envelopes over
// o.Runs noisy samples versus the core count, and reports the core count
// where the hybrid minimum first beats the distributed minimum (the
// paper observes ≈180 cores).
func fig6(o Options) (*Table, error) {
	sys, fullAtoms, err := btvSystem(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Fig. 6",
		Title: "Running time envelopes (min/max over noisy runs) vs cores, BTV",
		Notes: []string{fmt.Sprintf("BTV at %d atoms, extrapolated; %d samples per point",
			sys.NumAtoms(), o.Runs)},
		Header: []string{"Cores", "OCT_MPI min", "OCT_MPI max", "OCT_MPI+CILK min", "OCT_MPI+CILK max"},
	}
	crossover := 0
	for _, nodes := range btvNodeCounts {
		mpiRun, err := btvRun(o, sys, fullAtoms, 12*nodes, 1, int64(nodes))
		if err != nil {
			return nil, err
		}
		hybRun, err := btvRun(o, sys, fullAtoms, 2*nodes, 6, int64(nodes)+1000)
		if err != nil {
			return nil, err
		}
		if crossover == 0 && hybRun.min < mpiRun.min {
			crossover = 12 * nodes
		}
		t.AddRow(fmt.Sprintf("%d", 12*nodes),
			fmtSeconds(mpiRun.min), fmtSeconds(mpiRun.max),
			fmtSeconds(hybRun.min), fmtSeconds(hybRun.max))
	}
	if crossover > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"hybrid min first beats distributed min at %d cores (paper: ≈180)", crossover))
	} else {
		t.Notes = append(t.Notes, "no hybrid/distributed min crossover within the sweep")
	}
	return t, nil
}

// memoryExp reproduces the §V-B memory claim: per-node memory of OCT_MPI
// (12 single-thread ranks per node) versus OCT_MPI+CILK (2×6) on BTV.
func memoryExp(o Options) (*Table, error) {
	sys, fullAtoms, err := btvSystem(o)
	if err != nil {
		return nil, err
	}
	factor := float64(fullAtoms) / float64(sys.NumAtoms())
	data := int64(float64(sys.DataBytes()) * factor)
	mpiShape := perf.RunShape{Processes: 12, ThreadsPerProcess: 1, DataBytes: data}
	hybShape := perf.RunShape{Processes: 2, ThreadsPerProcess: 6, DataBytes: data}
	ops := []int64{1}
	mpi, err := o.Machine.Price(o.Cal, mpiShape, ops, simmpi.Stats{})
	if err != nil {
		return nil, err
	}
	hyb, err := o.Machine.Price(o.Cal, hybShape, ops, simmpi.Stats{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "§V-B memory",
		Title:  "Per-node memory on BTV: data replication of distributed vs hybrid",
		Notes:  []string{"paper: 8.2 GB vs 1.4 GB (5.86×) on one 12-core node"},
		Header: []string{"Program", "Ranks/node × threads", "Memory/node", "Ratio"},
	}
	ratio := float64(mpi.MemPerNodeBytes) / float64(hyb.MemPerNodeBytes)
	t.AddRow("OCT_MPI", "12 × 1", fmt.Sprintf("%.2f GB", gbOf(mpi.MemPerNodeBytes)), fmt.Sprintf("%.2f", ratio))
	t.AddRow("OCT_MPI+CILK", "2 × 6", fmt.Sprintf("%.2f GB", gbOf(hyb.MemPerNodeBytes)), "1.00")
	return t, nil
}

func gbOf(b int64) float64 { return float64(b) / float64(1<<30) }

// sanity guard: math import used by other files in this package.
var _ = math.Abs
