package bench

import (
	"bytes"
	"strings"
	"testing"
)

// fixtureTrajectory is a hand-built baseline for gate-logic tests: four
// kernels, all above the wall floor, plus one deterministic histogram.
func fixtureTrajectory() *Trajectory {
	return &Trajectory{
		Schema:   TrajectorySchemaVersion,
		Label:    "seed",
		MaxAtoms: 2000,
		Repeats:  3,
		Kernels: []TrajectoryKernel{
			{Name: "serial/mol_a", Atoms: 500, Ops: 1000000, WallNs: 40e6, NsPerOp: 40, ModelSec: 0.8},
			{Name: "cilk4/mol_a", Atoms: 500, Ops: 1000000, WallNs: 12e6, NsPerOp: 12, ModelSec: 0.25},
			{Name: "mpi4/mol_a", Atoms: 500, Ops: 1000000, WallNs: 14e6, NsPerOp: 14, ModelSec: 0.3},
			{Name: "hybrid2x2/mol_a", Atoms: 500, Ops: 1000000, WallNs: 13e6, NsPerOp: 13, ModelSec: 0.28},
		},
		Hists: map[string]TrajectoryHist{
			"pairs.born.near.rank": {Count: 8, Sum: 4000, P50: 512, P90: 1024, P99: 1024},
		},
	}
}

func cloneTrajectory(t *Trajectory) *Trajectory {
	cp := *t
	cp.Kernels = append([]TrajectoryKernel(nil), t.Kernels...)
	cp.Hists = make(map[string]TrajectoryHist, len(t.Hists))
	for k, v := range t.Hists {
		cp.Hists[k] = v
	}
	return &cp
}

func regressionFor(d Diff, kernel string) bool {
	for _, r := range d.Regressions {
		if r.Kernel == kernel {
			return true
		}
	}
	return false
}

// TestDiffIdenticalClean: a trajectory diffed against itself is clean.
func TestDiffIdenticalClean(t *testing.T) {
	seed := fixtureTrajectory()
	d := DiffTrajectories(seed, cloneTrajectory(seed), DiffOptions{})
	if len(d.Regressions) != 0 {
		t.Fatalf("self-diff reported regressions: %v", d.Regressions)
	}
	if d.HostRatio < 0.999 || d.HostRatio > 1.001 {
		t.Errorf("self-diff host ratio = %v, want 1", d.HostRatio)
	}
}

// TestDiffCatchesSingleKernelSlowdown is the gate's acceptance criterion:
// a synthetic 2x slowdown injected into one kernel's timing must come
// back as a regression.
func TestDiffCatchesSingleKernelSlowdown(t *testing.T) {
	seed := fixtureTrajectory()
	head := cloneTrajectory(seed)
	head.Kernels[2].WallNs *= 2
	head.Kernels[2].NsPerOp *= 2
	d := DiffTrajectories(seed, head, DiffOptions{})
	if !regressionFor(d, "mpi4/mol_a") {
		t.Fatalf("2x slowdown on mpi4/mol_a not flagged; diff: %+v", d)
	}
	if regressionFor(d, "serial/mol_a") {
		t.Errorf("untouched kernel flagged: %+v", d.Regressions)
	}
}

// TestDiffNormalizesHostSpeed: a uniformly 3x slower host (every kernel
// scaled identically) is NOT a regression — the geometric-mean
// normalization cancels it.
func TestDiffNormalizesHostSpeed(t *testing.T) {
	seed := fixtureTrajectory()
	head := cloneTrajectory(seed)
	for i := range head.Kernels {
		head.Kernels[i].WallNs *= 3
		head.Kernels[i].NsPerOp *= 3
	}
	d := DiffTrajectories(seed, head, DiffOptions{})
	if len(d.Regressions) != 0 {
		t.Fatalf("uniform host slowdown flagged as regression: %v", d.Regressions)
	}
	if d.HostRatio < 2.9 || d.HostRatio > 3.1 {
		t.Errorf("host ratio = %v, want ~3", d.HostRatio)
	}
}

// TestDiffDeterministicGates: ops drift, modeled-time drift, histogram
// drift, and kernel disappearance all gate independently of wall noise.
func TestDiffDeterministicGates(t *testing.T) {
	seed := fixtureTrajectory()

	t.Run("ops-drift", func(t *testing.T) {
		head := cloneTrajectory(seed)
		head.Kernels[0].Ops += 7
		d := DiffTrajectories(seed, head, DiffOptions{})
		if !regressionFor(d, "serial/mol_a") {
			t.Fatalf("ops drift not flagged: %+v", d)
		}
	})

	t.Run("model-drift", func(t *testing.T) {
		head := cloneTrajectory(seed)
		head.Kernels[1].ModelSec *= 1.2
		d := DiffTrajectories(seed, head, DiffOptions{})
		if !regressionFor(d, "cilk4/mol_a") {
			t.Fatalf("modeled-time drift not flagged: %+v", d)
		}
		// A modeled speedup is not a regression.
		faster := cloneTrajectory(seed)
		faster.Kernels[1].ModelSec *= 0.5
		if d := DiffTrajectories(seed, faster, DiffOptions{}); len(d.Regressions) != 0 {
			t.Errorf("modeled speedup flagged: %v", d.Regressions)
		}
	})

	t.Run("hist-drift", func(t *testing.T) {
		head := cloneTrajectory(seed)
		h := head.Hists["pairs.born.near.rank"]
		h.Sum++
		head.Hists["pairs.born.near.rank"] = h
		d := DiffTrajectories(seed, head, DiffOptions{})
		if !regressionFor(d, "hist pairs.born.near.rank") {
			t.Fatalf("histogram drift not flagged: %+v", d)
		}
	})

	t.Run("missing-kernel", func(t *testing.T) {
		head := cloneTrajectory(seed)
		head.Kernels = head.Kernels[:3]
		d := DiffTrajectories(seed, head, DiffOptions{})
		if !regressionFor(d, "hybrid2x2/mol_a") {
			t.Fatalf("missing kernel not flagged: %+v", d)
		}
	})

	t.Run("new-kernel-is-note", func(t *testing.T) {
		head := cloneTrajectory(seed)
		head.Kernels = append(head.Kernels, TrajectoryKernel{
			Name: "mpi8/mol_a", Ops: 1000000, WallNs: 9e6, NsPerOp: 9, ModelSec: 0.2,
		})
		d := DiffTrajectories(seed, head, DiffOptions{})
		if len(d.Regressions) != 0 {
			t.Fatalf("new kernel flagged as regression: %v", d.Regressions)
		}
		found := false
		for _, n := range d.Notes {
			if strings.Contains(n, "mpi8/mol_a") {
				found = true
			}
		}
		if !found {
			t.Errorf("new kernel not noted: %v", d.Notes)
		}
	})
}

// TestDiffWallFloor: kernels under the wall floor skip the noisy ns/op
// gate (noted, not flagged) but still gate on deterministic drift.
func TestDiffWallFloor(t *testing.T) {
	seed := fixtureTrajectory()
	seed.Kernels[3].WallNs = 200e3 // 0.2ms, under the 1ms default floor
	seed.Kernels[3].NsPerOp = 0.2
	head := cloneTrajectory(seed)
	head.Kernels[3].NsPerOp *= 10
	d := DiffTrajectories(seed, head, DiffOptions{})
	if regressionFor(d, "hybrid2x2/mol_a") {
		t.Fatalf("sub-floor kernel wall-gated: %+v", d.Regressions)
	}
	noted := false
	for _, n := range d.Notes {
		if strings.Contains(n, "hybrid2x2/mol_a") && strings.Contains(n, "floor") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("sub-floor skip not noted: %v", d.Notes)
	}

	head.Kernels[3].Ops++
	d = DiffTrajectories(seed, head, DiffOptions{})
	if !regressionFor(d, "hybrid2x2/mol_a") {
		t.Fatalf("sub-floor kernel escaped the ops gate: %+v", d)
	}
}

// TestTrajectoryRoundTrip: Write then ReadTrajectory is lossless, and the
// reader refuses foreign schema versions.
func TestTrajectoryRoundTrip(t *testing.T) {
	seed := fixtureTrajectory()
	var buf bytes.Buffer
	if err := seed.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffTrajectories(seed, got, DiffOptions{}); len(d.Regressions) != 0 {
		t.Fatalf("round trip drifted: %v", d.Regressions)
	}
	if got.Label != seed.Label || got.Repeats != seed.Repeats || len(got.Kernels) != len(seed.Kernels) {
		t.Errorf("round trip lost fields: %+v", got)
	}

	bad := cloneTrajectory(seed)
	bad.Schema = TrajectorySchemaVersion + 1
	buf.Reset()
	if err := bad.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrajectory(&buf); err == nil {
		t.Error("foreign schema version accepted")
	}
}

// TestCollectTrajectorySmoke runs a real (tiny) collection and checks
// structural invariants: full layout × roster coverage, positive ops and
// wall, deterministic histograms present, and two back-to-back
// collections agreeing on everything deterministic.
func TestCollectTrajectorySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("collects real benchmark runs")
	}
	o := DefaultOptions()
	o.MaxAtoms = 500
	collect := func() *Trajectory {
		tr, err := CollectTrajectory(o, "smoke", 1)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr := collect()
	wantKernels := len(trajectoryLayouts) * len(roster(o.MaxAtoms))
	if len(tr.Kernels) != wantKernels {
		t.Fatalf("got %d kernels, want %d", len(tr.Kernels), wantKernels)
	}
	for _, k := range tr.Kernels {
		if k.Ops <= 0 || k.WallNs <= 0 || k.NsPerOp <= 0 || k.ModelSec <= 0 {
			t.Errorf("kernel %s has a non-positive field: %+v", k.Name, k)
		}
	}
	for _, name := range []string{"pairs.born.near.rank", "redo.iterations"} {
		if _, found := tr.Hists[name]; !found {
			t.Errorf("trajectory lacks histogram %q (has %v)", name, tr.Hists)
		}
	}
	// The deterministic sections must survive a re-collection: diffing
	// two fresh same-workload trajectories reports no ops/model/hist
	// drift (wall time may differ; the host gate normalizes it).
	d := DiffTrajectories(tr, collect(), DiffOptions{})
	for _, r := range d.Regressions {
		if strings.Contains(r.Detail, "workload drift") || strings.Contains(r.Detail, "deterministic") {
			t.Errorf("deterministic section drifted across collections: %v", r)
		}
	}
}

// TestDiffAddedRemovedSections: membership changes surface as explicit
// Added/Removed lists (benchdiff renders them as their own sections), not
// just as entries buried in the note/regression streams.
func TestDiffAddedRemovedSections(t *testing.T) {
	seed := fixtureTrajectory()
	head := cloneTrajectory(seed)
	head.Kernels = head.Kernels[1:] // drop seed's first kernel
	head.Kernels = append(head.Kernels,
		TrajectoryKernel{Name: "mpi8/mol_a", Ops: 1000000, WallNs: 9e6, NsPerOp: 9, ModelSec: 0.2},
		TrajectoryKernel{Name: "mpi16/mol_a", Ops: 1000000, WallNs: 5e6, NsPerOp: 5, ModelSec: 0.1},
	)
	d := DiffTrajectories(seed, head, DiffOptions{})
	if len(d.Added) != 2 || d.Added[0] != "mpi8/mol_a" || d.Added[1] != "mpi16/mol_a" {
		t.Errorf("Added = %v, want the two new kernels in input order", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "serial/mol_a" {
		t.Errorf("Removed = %v, want the dropped kernel", d.Removed)
	}
	// A removed kernel still fails the gate; added ones never do.
	if !regressionFor(d, "serial/mol_a") {
		t.Error("removed kernel no longer gates")
	}
	for _, name := range d.Added {
		if regressionFor(d, name) {
			t.Errorf("added kernel %s flagged as regression", name)
		}
	}
	// Identical trajectories have an empty membership delta.
	same := DiffTrajectories(seed, cloneTrajectory(seed), DiffOptions{})
	if len(same.Added) != 0 || len(same.Removed) != 0 {
		t.Errorf("identical trajectories produced membership delta: +%v -%v", same.Added, same.Removed)
	}
}
