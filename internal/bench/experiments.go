package bench

import (
	"fmt"
	"sort"

	"gbpolar/internal/baselines"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// experimentFn produces one table.
type experimentFn func(o Options) (*Table, error)

// experiments maps experiment ids (DESIGN.md §4) to their generators.
var experiments = map[string]experimentFn{
	"table1":            table1,
	"table2":            table2,
	"fig5":              fig5,
	"fig6":              fig6,
	"fig7":              fig7,
	"fig8a":             fig8a,
	"fig8b":             fig8b,
	"fig9":              fig9,
	"fig10":             fig10,
	"fig11":             fig11,
	"memory":            memoryExp,
	"workprec":          workprec,
	"ablation-division": ablationDivision,
	"ablation-math":     ablationMath,
	"ablation-leaf":     ablationLeaf,
	"ablation-binning":  ablationBinning,
	"ablation-stealing": ablationStealing,
	"ablation-dynamic":  ablationDynamic,
	"ablation-integral": ablationIntegral,
	"ablation-nblist":   ablationNblist,
	"ablation-distdata": ablationDistData,
}

// IDs returns the experiment ids in stable order.
func IDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run generates the table for one experiment id.
func Run(id string, o Options) (*Table, error) {
	fn, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return fn(o.withDefaults())
}

// table1 reproduces Table I: the simulation environment, here the
// machine model the pricing uses.
func table1(o Options) (*Table, error) {
	m := o.Machine
	t := &Table{
		ID:     "Table I",
		Title:  "Simulation environment (performance-model machine)",
		Header: []string{"Attribute", "Property"},
	}
	t.AddRow("Machine", m.Name)
	t.AddRow("Nodes", fmt.Sprintf("%d", m.Nodes))
	t.AddRow("Cores/node", fmt.Sprintf("%d", m.CoresPerNode))
	t.AddRow("Per-core pairwise rate", fmt.Sprintf("%.0fe6 interactions/s", m.OpsPerSecond/1e6))
	t.AddRow("L3 per node", fmt.Sprintf("%d MB", m.L3BytesPerNode>>20))
	t.AddRow("RAM per node", fmt.Sprintf("%d GB", m.RAMBytesPerNode>>30))
	t.AddRow("Interconnect ts", fmt.Sprintf("%.2g s", m.Ts))
	t.AddRow("Interconnect tw", fmt.Sprintf("%.3g s/byte", m.Tw))
	t.AddRow("Intra-node comm factor", fmt.Sprintf("%.2f", m.IntraNodeFactor))
	t.AddRow("Parallelism platform", "sched (work stealing) + simmpi (message passing)")
	return t, nil
}

// table2 reproduces Table II: packages, GB models and parallelism.
func table2(o Options) (*Table, error) {
	t := &Table{
		ID:     "Table II",
		Title:  "Packages with GB models and types of parallelism used",
		Header: []string{"Package", "GB-Model", "Parallelism"},
	}
	modelName := map[baselines.BornModel]string{
		baselines.HCT:      "HCT",
		baselines.OBC:      "OBC",
		baselines.StillPW:  "STILL",
		baselines.VolumeR6: "STILL (volume r6)",
	}
	for _, sp := range baselines.Registry() {
		t.AddRow(sp.Name, modelName[sp.Model], sp.Parallel)
	}
	t.AddRow("OCT_CILK", "STILL (surface r6)", "Shared (work stealing)")
	t.AddRow("OCT_MPI", "STILL (surface r6)", "Distributed (message passing)")
	t.AddRow("OCT_MPI+CILK", "STILL (surface r6)", "Distributed+Shared (hybrid)")
	t.AddRow("Naïve", "STILL (surface r6)", "Serial")
	return t, nil
}

// --- shared workload helpers ------------------------------------------

// sysCacheEntry caches a prepared system and its naive reference (the
// expensive quadratic evaluation is shared by fig8a, fig9, fig10, fig11).
type sysCacheEntry struct {
	sys      *gb.System
	mol      *molecule.Molecule
	naive    *baselines.Result
	naiveSet bool
}

var sysCache = map[string]*sysCacheEntry{}

// systemFor builds (or recalls) the prepared system for a molecule.
func systemFor(mol *molecule.Molecule, params gb.Params) (*sysCacheEntry, error) {
	key := fmt.Sprintf("%s/%d/%+v", mol.Name, mol.NumAtoms(), params)
	if e, ok := sysCache[key]; ok {
		return e, nil
	}
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sys, err := gb.NewSystem(mol, surf, params)
	if err != nil {
		return nil, err
	}
	e := &sysCacheEntry{sys: sys, mol: mol}
	sysCache[key] = e
	return e, nil
}

// naiveFor returns the cached naive reference for the entry.
func (e *sysCacheEntry) naiveResult() *baselines.Result {
	if !e.naiveSet {
		e.naive = baselines.NaiveResult(e.sys)
		e.naiveSet = true
	}
	return e.naive
}

// roster returns the ZDock entries capped by scale-independent MaxAtoms
// (0 = all).
func roster(maxAtoms int) []molecule.BenchmarkEntry {
	all := molecule.ZDockRoster()
	if maxAtoms <= 0 {
		return all
	}
	var out []molecule.BenchmarkEntry
	for _, e := range all {
		if e.Atoms <= maxAtoms {
			out = append(out, e)
		}
	}
	return out
}
