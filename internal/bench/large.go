package bench

import (
	"fmt"
	"math"

	"gbpolar/internal/baselines"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
	"gbpolar/internal/simmpi"
)

// fig11 reproduces the Figure 11 table: the Cucumber Mosaic Virus shell
// (509,640 atoms) on 12 and 144 cores — times, speedups w.r.t. Amber,
// energies and % difference with the naïve reference.
//
// The run executes at Scale × the full size (energies and % differences
// are exact at the realized size); times are extrapolated to the full
// atom count — linearly for the near-linear octree programs and
// quadratically for the comparators' O(M²) energy phase (DESIGN.md §2).
func fig11(o Options) (*Table, error) {
	fullAtoms := molecule.CMVAtoms
	scaledAtoms := int(o.Scale * float64(fullAtoms) * 2)
	if scaledAtoms < 2000 {
		scaledAtoms = 2000
	}
	if scaledAtoms > fullAtoms {
		scaledAtoms = fullAtoms
	}
	mol := molecule.ScaledCMV(scaledAtoms)
	entry, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	sys := entry.sys
	factor := float64(fullAtoms) / float64(scaledAtoms)

	// --- octree programs ---------------------------------------------
	pool := sched.New(12)
	cilk := sys.RunCilk(pool)
	pool.Close()
	mpi12, err := sys.RunMPI(12)
	if err != nil {
		return nil, err
	}
	hyb12, err := sys.RunHybrid(2, 6)
	if err != nil {
		return nil, err
	}
	mpi144, err := sys.RunMPI(144)
	if err != nil {
		return nil, err
	}
	hyb144, err := sys.RunHybrid(24, 6)
	if err != nil {
		return nil, err
	}
	priceAt := func(res *gb.Result) (float64, error) {
		scaled := scaleResult(res, factor)
		shape := perf.RunShape{
			Processes:         res.Processes,
			ThreadsPerProcess: res.ThreadsPerProcess,
			DataBytes:         int64(float64(sys.DataBytes()) * factor),
		}
		b, err := o.Machine.Price(o.Cal, shape, scaled.PerCoreOps, scaled.Traffic)
		if err != nil {
			return 0, err
		}
		return b.TotalSeconds, nil
	}

	// --- comparators ----------------------------------------------------
	naive := entry.naiveResult()
	// Naïve full-size time: Born phase scales ~linearly in atoms (surface
	// points ∝ atoms), the energy phase quadratically.
	naiveBornOps := int64(sys.NumAtoms()) * int64(sys.NumQPoints())
	naiveEpolOps := naive.Ops - naiveBornOps
	naiveFullOps := int64(float64(naiveBornOps)*factor*factor) + // m and M both grow
		int64(float64(naiveEpolOps)*factor*factor)
	_ = naiveFullOps

	amber, err := baselines.SpecByName("Amber")
	if err != nil {
		return nil, err
	}
	amberRes, err := amber.Run(mol, gb.DefaultSolventDielectric)
	if err != nil {
		return nil, err
	}
	// Amber full-size ops: Born phase (cutoff list) linear, energy phase
	// quadratic.
	amberBornOps := amberRes.Ops - quadraticOps(scaledAtoms)
	amberFullOps := int64(float64(amberBornOps)*factor) + quadraticOps(fullAtoms)
	amber12 := amber.StartupSeconds + float64(amberFullOps)/
		(o.Machine.OpsPerSecond*amber.RateFactor*12*amber.ParallelEfficiency)
	amber144 := amber.StartupSeconds + float64(amberFullOps)/
		(o.Machine.OpsPerSecond*amber.RateFactor*144*amber.ParallelEfficiency)

	t := &Table{
		ID:    "Fig. 11",
		Title: "Scalability on a large molecule (Cucumber Mosaic Virus shell)",
		Notes: []string{
			fmt.Sprintf("CMV run at %d of its %d atoms; energies/%%diff at the realized size, times extrapolated to full size", scaledAtoms, fullAtoms),
			"paper: OCT_CILK 12.5s; Amber 39min/3.3min; OCT_MPI+CILK 4.8s/0.61s; OCT_MPI 4.5s/0.46s; speedups 488/520 (12 cores), 325/430 (144); diffs −0.95/2.2/−0.07/−0.07%",
		},
		Header: []string{"Program", "12 cores", "144 cores", "Speedup vs Amber (12)", "Speedup vs Amber (144)", "Epol (kcal/mol)", "% diff w/ naïve"},
	}

	addOct := func(name string, r12, r144 *gb.Result) error {
		t12, err := priceAt(r12)
		if err != nil {
			return err
		}
		c144 := "X"
		s144 := "X"
		if r144 != nil {
			t144, err := priceAt(r144)
			if err != nil {
				return err
			}
			c144 = fmtSeconds(t144)
			s144 = fmt.Sprintf("%.0f", amber144/t144)
		}
		diff := 100 * (r12.Epol - naive.Energy) / math.Abs(naive.Energy)
		t.AddRow(name, fmtSeconds(t12), c144,
			fmt.Sprintf("%.0f", amber12/t12), s144,
			fmt.Sprintf("%.4g", r12.Epol), fmt.Sprintf("%+.2f", diff))
		return nil
	}
	if err := addOct("OCT_CILK", cilk, nil); err != nil {
		return nil, err
	}
	amberDiff := 100 * (amberRes.Energy - naive.Energy) / math.Abs(naive.Energy)
	t.AddRow("Amber", fmtSeconds(amber12), fmtSeconds(amber144), "1", "1",
		fmt.Sprintf("%.4g", amberRes.Energy), fmt.Sprintf("%+.2f", amberDiff))
	if err := addOct("OCT_MPI+CILK", hyb12, hyb144); err != nil {
		return nil, err
	}
	if err := addOct("OCT_MPI", mpi12, mpi144); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Tinker and GBr6 run out of memory on CMV (pair list would need %.1f GB each)",
		float64(quadraticOps(fullAtoms))*4/float64(1<<30)))
	return t, nil
}

func quadraticOps(n int) int64 {
	return int64(n) * int64(n+1) / 2
}

var _ = simmpi.Stats{}
