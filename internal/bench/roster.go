package bench

import (
	"fmt"
	"math"

	"gbpolar/internal/baselines"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/stats"
)

// octRosterRun holds the three octree programs' results for one molecule.
type octRosterRun struct {
	entry  molecule.BenchmarkEntry
	sys    *sysCacheEntry
	cilk   *gb.Result
	mpi    *gb.Result
	hybrid *gb.Result
}

// runOctPrograms executes OCT_CILK (1×12), OCT_MPI (12×1) and
// OCT_MPI+CILK (2×6) on one roster molecule — the paper's single-node
// layouts (§V-C).
func runOctPrograms(e molecule.BenchmarkEntry, params gb.Params) (*octRosterRun, error) {
	mol := molecule.ZDockMolecule(e)
	entry, err := systemFor(mol, params)
	if err != nil {
		return nil, err
	}
	run := &octRosterRun{entry: e, sys: entry}
	pool := sched.New(12)
	run.cilk = entry.sys.RunCilk(pool)
	pool.Close()
	if run.mpi, err = entry.sys.RunMPI(12); err != nil {
		return nil, err
	}
	if run.hybrid, err = entry.sys.RunHybrid(2, 6); err != nil {
		return nil, err
	}
	return run, nil
}

// fig7 reproduces Figure 7: running time of the three octree programs
// across the ZDock roster on one 12-core node (approximate math on, as in
// the paper's Fig. 7 run).
func fig7(o Options) (*Table, error) {
	params := gb.DefaultParams()
	params.Math = gb.ApproxMath
	t := &Table{
		ID:    "Fig. 7",
		Title: "Running time of the octree programs (1 node × 12 cores), ms",
		Notes: []string{
			"modeled time on the Table I machine; ε_Born = ε_Epol = 0.9, approximate math on",
		},
		Header: []string{"Molecule", "Atoms", "OCT_CILK", "OCT_MPI", "OCT_MPI+CILK"},
	}
	for _, e := range roster(o.MaxAtoms) {
		run, err := runOctPrograms(e, params)
		if err != nil {
			return nil, err
		}
		bc, err := priceOct(o, run.sys.sys, run.cilk)
		if err != nil {
			return nil, err
		}
		bm, err := priceOct(o, run.sys.sys, run.mpi)
		if err != nil {
			return nil, err
		}
		bh, err := priceOct(o, run.sys.sys, run.hybrid)
		if err != nil {
			return nil, err
		}
		t.AddRow(e.Name, fmt.Sprintf("%d", e.Atoms),
			fmtSeconds(bc.TotalSeconds), fmtSeconds(bm.TotalSeconds), fmtSeconds(bh.TotalSeconds))
	}
	return t, nil
}

// rosterProgramTimes computes modeled seconds for every program on one
// molecule (the Fig. 8a row) plus the energies (the Fig. 9 row).
type rosterRow struct {
	entry    molecule.BenchmarkEntry
	times    map[string]float64 // seconds; 0 = did not run (OOM)
	energies map[string]float64 // kcal/mol; NaN = did not run
}

// rosterPrograms is the Fig. 8/9 program order.
var rosterPrograms = []string{
	"OCT_MPI", "OCT_MPI+CILK", "OCT_CILK", "Gromacs", "Tinker", "GBr6", "NAMD", "Naïve", "Amber",
}

func rosterRowFor(o Options, e molecule.BenchmarkEntry) (*rosterRow, error) {
	params := gb.DefaultParams()
	run, err := runOctPrograms(e, params)
	if err != nil {
		return nil, err
	}
	row := &rosterRow{
		entry:    e,
		times:    map[string]float64{},
		energies: map[string]float64{},
	}
	for name, res := range map[string]*gb.Result{
		"OCT_CILK": run.cilk, "OCT_MPI": run.mpi, "OCT_MPI+CILK": run.hybrid,
	} {
		b, err := priceOct(o, run.sys.sys, res)
		if err != nil {
			return nil, err
		}
		row.times[name] = b.TotalSeconds
		row.energies[name] = res.Epol
	}
	naive := run.sys.naiveResult()
	row.times["Naïve"] = priceNaive(o, naive.Ops)
	row.energies["Naïve"] = naive.Energy
	for _, sp := range baselines.Registry() {
		res, err := sp.Run(run.sys.mol, gb.DefaultSolventDielectric)
		if err != nil {
			return nil, err
		}
		if res.OOM {
			row.times[sp.Name] = 0
			row.energies[sp.Name] = math.NaN()
			continue
		}
		row.times[sp.Name] = sp.StartupSeconds + priceBaseline(o, sp, res, sp.Cores)
		row.energies[sp.Name] = res.Energy
	}
	return row, nil
}

// fig8a reproduces Figure 8a: running times of all programs across the
// roster, sorted by molecule size.
func fig8a(o Options) (*Table, error) {
	t := &Table{
		ID:     "Fig. 8a",
		Title:  "Running time for different algorithms (12 cores; GBr6 serial)",
		Notes:  []string{"'-' marks a run that failed (out of memory)"},
		Header: append([]string{"Molecule", "Atoms"}, rosterPrograms...),
	}
	for _, e := range roster(o.MaxAtoms) {
		row, err := rosterRowFor(o, e)
		if err != nil {
			return nil, err
		}
		cells := []string{e.Name, fmt.Sprintf("%d", e.Atoms)}
		for _, prog := range rosterPrograms {
			cells = append(cells, fmtSeconds(row.times[prog]))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// fig8b reproduces Figure 8b: speedups w.r.t. Amber-12 on 12 cores.
func fig8b(o Options) (*Table, error) {
	progs := []string{"OCT_MPI", "OCT_MPI+CILK", "OCT_CILK", "Gromacs", "Tinker", "GBr6", "NAMD"}
	t := &Table{
		ID:     "Fig. 8b",
		Title:  "Speedup w.r.t. Amber-12 (12 cores; 1 core for GBr6)",
		Header: append([]string{"Molecule", "Atoms"}, progs...),
	}
	maxes := map[string]float64{}
	for _, e := range roster(o.MaxAtoms) {
		row, err := rosterRowFor(o, e)
		if err != nil {
			return nil, err
		}
		amber := row.times["Amber"]
		cells := []string{e.Name, fmt.Sprintf("%d", e.Atoms)}
		for _, prog := range progs {
			pt := row.times[prog]
			if pt <= 0 || amber <= 0 {
				cells = append(cells, "-")
				continue
			}
			sp := amber / pt
			if sp > maxes[prog] {
				maxes[prog] = sp
			}
			cells = append(cells, fmt.Sprintf("%.2f", sp))
		}
		t.AddRow(cells...)
	}
	cells := []string{"(max)", ""}
	for _, prog := range progs {
		cells = append(cells, fmt.Sprintf("%.2f", maxes[prog]))
	}
	t.AddRow(cells...)
	return t, nil
}

// fig9 reproduces Figure 9: Epol values computed by the different
// programs.
func fig9(o Options) (*Table, error) {
	progs := []string{"OCT_MPI", "Amber", "Naïve", "Gromacs", "Tinker", "GBr6", "NAMD"}
	t := &Table{
		ID:     "Fig. 9",
		Title:  "Epol (kcal/mol) computed by different algorithms",
		Header: append([]string{"Molecule", "Atoms"}, progs...),
	}
	for _, e := range roster(o.MaxAtoms) {
		row, err := rosterRowFor(o, e)
		if err != nil {
			return nil, err
		}
		cells := []string{e.Name, fmt.Sprintf("%d", e.Atoms)}
		for _, prog := range progs {
			v := row.energies[prog]
			if math.IsNaN(v) {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.0f", v))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// fig10 reproduces Figure 10: % error (avg ± std over the roster) and
// runtime versus the Epol approximation parameter ε ∈ {0.1, …, 0.9} with
// the Born-radii ε fixed at 0.9 (approximate math off).
func fig10(o Options) (*Table, error) {
	t := &Table{
		ID:    "Fig. 10",
		Title: "Error and running time vs Epol ε (OCT_MPI+CILK, Born ε = 0.9)",
		Notes: []string{
			"error is (E_oct − E_naive)/|E_naive| per molecule; avg ± std over the roster",
		},
		Header: []string{"ε", "avg err %", "std err %", "avg−std %", "avg+std %", "avg time", "max time"},
	}
	entries := roster(o.MaxAtoms)
	for _, eps := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		params := gb.DefaultParams()
		params.EpsEpol = eps
		var errs []float64
		var sumT, maxT float64
		for _, e := range entries {
			mol := molecule.ZDockMolecule(e)
			entry, err := systemFor(mol, params)
			if err != nil {
				return nil, err
			}
			res, err := entry.sys.RunHybrid(2, 6)
			if err != nil {
				return nil, err
			}
			// The naive reference is ε-independent: share the cache from
			// the default-params system.
			refEntry, err := systemFor(mol, gb.DefaultParams())
			if err != nil {
				return nil, err
			}
			naive := refEntry.naiveResult()
			errs = append(errs, 100*(res.Epol-naive.Energy)/math.Abs(naive.Energy))
			b, err := priceOct(o, entry.sys, res)
			if err != nil {
				return nil, err
			}
			sumT += b.TotalSeconds
			if b.TotalSeconds > maxT {
				maxT = b.TotalSeconds
			}
		}
		avg, std := stats.MeanStd(errs)
		t.AddRow(fmt.Sprintf("%.1f", eps),
			fmt.Sprintf("%+.3f", avg), fmt.Sprintf("%.3f", std),
			fmt.Sprintf("%+.3f", avg-std), fmt.Sprintf("%+.3f", avg+std),
			fmtSeconds(sumT/float64(len(entries))), fmtSeconds(maxT))
	}
	return t, nil
}
