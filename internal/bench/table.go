// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation section it regenerates the corresponding rows —
// workload generation, parameter sweeps, the octree programs and the
// baseline emulations, and the performance-model pricing that maps
// measured operation counts and communication logs onto the paper's
// 12-core-node cluster (see DESIGN.md §2 and §4).
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Print renders the table as aligned text with a Markdown-style rule.
func (t *Table) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return strings.TrimRight(strings.Join(parts, " | "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
