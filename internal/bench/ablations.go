package bench

import (
	"fmt"
	"math"
	"time"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/octree"
	"gbpolar/internal/surface"
)

// ablationMolecule is the mid-size workload the design-choice ablations
// run on.
func ablationMolecule() *molecule.Molecule {
	return molecule.Exactly(molecule.Globule("ablation", 4000, 2026), 4000, 2026)
}

// ablationDivision contrasts node-based and atom-based work division
// (§IV): time and error versus the process count.
func ablationDivision(o Options) (*Table, error) {
	mol := ablationMolecule()
	t := &Table{
		ID:    "Ablation: work division",
		Title: "Node–node vs atom–node division: modeled time and error vs P",
		Notes: []string{
			"§IV: node-based error is P-invariant; atom-based error varies with P",
		},
		Header: []string{"P", "node-node time", "node-node err %", "atom-node time", "atom-node err %"},
	}
	ref, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	naive := ref.naiveResult()
	atomParams := gb.DefaultParams()
	atomParams.Division = gb.AtomNode
	atomEntry, err := systemFor(mol, atomParams)
	if err != nil {
		return nil, err
	}
	for _, P := range []int{1, 2, 4, 8, 12} {
		nodeRes, err := ref.sys.RunMPI(P)
		if err != nil {
			return nil, err
		}
		atomRes, err := atomEntry.sys.RunMPI(P)
		if err != nil {
			return nil, err
		}
		nb, err := priceOct(o, ref.sys, nodeRes)
		if err != nil {
			return nil, err
		}
		ab, err := priceOct(o, atomEntry.sys, atomRes)
		if err != nil {
			return nil, err
		}
		errPct := func(e float64) string {
			return fmt.Sprintf("%+.4f", 100*(e-naive.Energy)/math.Abs(naive.Energy))
		}
		t.AddRow(fmt.Sprintf("%d", P),
			fmtSeconds(nb.TotalSeconds), errPct(nodeRes.Epol),
			fmtSeconds(ab.TotalSeconds), errPct(atomRes.Epol))
	}
	return t, nil
}

// ablationMath measures approximate math on/off: real wall-clock ratio of
// the serial kernels and the induced energy shift (§V-C: ≈1.42× faster,
// errors shifted).
func ablationMath(o Options) (*Table, error) {
	mol := ablationMolecule()
	exactEntry, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	approxParams := gb.DefaultParams()
	approxParams.Math = gb.ApproxMath
	approxEntry, err := systemFor(mol, approxParams)
	if err != nil {
		return nil, err
	}
	// Repeat the serial run a few times and take the best wall time.
	best := func(sys *gb.System) (time.Duration, float64) {
		bestD := time.Duration(math.MaxInt64)
		var e float64
		for i := 0; i < 3; i++ {
			r := sys.RunSerial()
			if r.Wall < bestD {
				bestD = r.Wall
			}
			e = r.Epol
		}
		return bestD, e
	}
	exactD, exactE := best(exactEntry.sys)
	approxD, approxE := best(approxEntry.sys)
	t := &Table{
		ID:     "Ablation: approximate math",
		Title:  "Fast inverse-sqrt/exp kernels vs exact math (serial, measured wall time)",
		Notes:  []string{"paper: approximate math ≈1.42× faster with a 4–5% error shift"},
		Header: []string{"Math", "Wall time", "Speedup", "Epol (kcal/mol)", "shift %"},
	}
	t.AddRow("exact", fmtDur(exactD), "1.00", fmt.Sprintf("%.2f", exactE), "0")
	t.AddRow("approximate", fmtDur(approxD),
		fmt.Sprintf("%.2f", float64(exactD)/float64(approxD)),
		fmt.Sprintf("%.2f", approxE),
		fmt.Sprintf("%+.4f", 100*(approxE-exactE)/math.Abs(exactE)))
	return t, nil
}

// ablationLeaf sweeps the octree leaf capacities (DESIGN.md §6.1).
func ablationLeaf(o Options) (*Table, error) {
	mol := ablationMolecule()
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation: leaf capacity",
		Title:  "Octree leaf sizes vs interaction work (serial run)",
		Header: []string{"Leaf atoms", "Leaf q-points", "Total ops", "Modeled time", "Tree nodes (T_A)"},
	}
	for _, leaf := range []int{2, 4, 8, 16, 32, 64} {
		params := gb.DefaultParams()
		params.LeafAtoms = leaf
		params.LeafQPoints = leaf * 4
		sys, err := gb.NewSystem(mol, surf, params)
		if err != nil {
			return nil, err
		}
		res := sys.RunSerial()
		b, err := priceOct(o, sys, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", leaf), fmt.Sprintf("%d", leaf*4),
			fmt.Sprintf("%d", res.TotalOps()), fmtSeconds(b.TotalSeconds),
			fmt.Sprintf("%d", sys.TA.NumNodes()))
	}
	return t, nil
}

// ablationBinning sweeps the Born-radius class width of APPROX-Epol
// (DESIGN.md §6.5) at the working ε = 0.9.
func ablationBinning(o Options) (*Table, error) {
	mol := ablationMolecule()
	ref, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	naive := ref.naiveResult()
	t := &Table{
		ID:     "Ablation: radius binning",
		Title:  "Born-radius class width vs energy error and work (ε_Epol = 0.9)",
		Notes:  []string{"0.9 is the paper's ln(1+ε) bin width; the library defaults to 0.2"},
		Header: []string{"Bin eps", "Epol err %", "Total ops"},
	}
	for _, binEps := range []float64{0.9, 0.4, 0.2, 0.1, 0.05} {
		params := gb.DefaultParams()
		params.EpsBin = binEps
		entry, err := systemFor(mol, params)
		if err != nil {
			return nil, err
		}
		res := entry.sys.RunSerial()
		t.AddRow(fmt.Sprintf("%.2f", binEps),
			fmt.Sprintf("%+.4f", 100*(res.Epol-naive.Energy)/math.Abs(naive.Energy)),
			fmt.Sprintf("%d", res.TotalOps()))
	}
	return t, nil
}

// ablationStealing contrasts dynamic (work-stealing) load balance inside
// a node with the static division a pure-MPI layout gets (§IV-A).
func ablationStealing(o Options) (*Table, error) {
	mol := ablationMolecule()
	entry, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	hyb, err := entry.sys.RunHybrid(1, 12) // one rank, 12 stealing workers
	if err != nil {
		return nil, err
	}
	mpi, err := entry.sys.RunMPI(12) // 12 static single-thread ranks
	if err != nil {
		return nil, err
	}
	imbalance := func(ops []int64) (float64, int64) {
		maxOps, sum := int64(0), int64(0)
		for _, o := range ops {
			sum += o
			if o > maxOps {
				maxOps = o
			}
		}
		mean := float64(sum) / float64(len(ops))
		return float64(maxOps) / mean, maxOps
	}
	hi, hmax := imbalance(hyb.PerCoreOps)
	mi, mmax := imbalance(mpi.PerCoreOps)
	hb, err := priceOct(o, entry.sys, hyb)
	if err != nil {
		return nil, err
	}
	mb, err := priceOct(o, entry.sys, mpi)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation: load balancing",
		Title:  "Work stealing (dynamic) vs static division on 12 cores",
		Notes:  []string{"imbalance = max per-core ops / mean per-core ops; modeled time follows the max"},
		Header: []string{"Scheme", "Imbalance", "Max core ops", "Steals", "Modeled time"},
	}
	t.AddRow("work stealing (1×12)", fmt.Sprintf("%.3f", hi),
		fmt.Sprintf("%d", hmax), fmt.Sprintf("%d", hyb.Steals), fmtSeconds(hb.TotalSeconds))
	t.AddRow("static ranks (12×1)", fmt.Sprintf("%.3f", mi),
		fmt.Sprintf("%d", mmax), "0", fmtSeconds(mb.TotalSeconds))
	return t, nil
}

// ablationDynamic contrasts the static cross-rank division with the
// coordinator-served dynamic chunks of RunMPIDynamic (the paper's
// proposed future extension) on a skew-cost workload.
func ablationDynamic(o Options) (*Table, error) {
	dense := molecule.Exactly(molecule.Globule("dense", 3000, 5), 3000, 5)
	sparse := molecule.Helix("sparse", 1000, 6).ApplyTransform(
		geom.Translate(geom.V(70, 0, 0)))
	mol := molecule.Merge("skewed", dense, sparse)
	entry, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Ablation: cross-rank dynamic balancing",
		Title: "Static segments vs coordinator-served dynamic chunks (skewed workload)",
		Notes: []string{
			"the paper's conclusion proposes explicit dynamic balancing across nodes;",
			"dynamic gives up one rank to coordination and pays chunk-protocol messages",
		},
		Header: []string{"Scheme", "Compute ranks", "Imbalance", "Modeled time", "P2P msgs"},
	}
	imbalance := func(ops []int64) float64 {
		maxOps, sum, n := int64(0), int64(0), 0
		for _, op := range ops {
			if op == 0 {
				continue
			}
			sum += op
			n++
			if op > maxOps {
				maxOps = op
			}
		}
		if sum == 0 {
			return 1
		}
		return float64(maxOps) * float64(n) / float64(sum)
	}
	for _, computeRanks := range []int{4, 8, 11} {
		static, err := entry.sys.RunMPI(computeRanks)
		if err != nil {
			return nil, err
		}
		dynamic, err := entry.sys.RunMPIDynamic(computeRanks + 1)
		if err != nil {
			return nil, err
		}
		sb, err := priceOct(o, entry.sys, static)
		if err != nil {
			return nil, err
		}
		db, err := priceOct(o, entry.sys, dynamic)
		if err != nil {
			return nil, err
		}
		t.AddRow("static", fmt.Sprintf("%d", computeRanks),
			fmt.Sprintf("%.3f", imbalance(static.PerCoreOps)),
			fmtSeconds(sb.TotalSeconds), fmt.Sprintf("%d", static.Traffic.P2PMessages))
		t.AddRow("dynamic", fmt.Sprintf("%d (+1 coord)", computeRanks),
			fmt.Sprintf("%.3f", imbalance(dynamic.PerCoreOps)),
			fmtSeconds(db.TotalSeconds), fmt.Sprintf("%d", dynamic.Traffic.P2PMessages))
	}
	return t, nil
}

// ablationIntegral contrasts the r⁶ (Eq. 4) and r⁴ (Eq. 3) Born-radius
// forms: accuracy of the energy against the r⁶ naive reference, and the
// systematic radius inflation of the Coulomb-field approximation.
func ablationIntegral(o Options) (*Table, error) {
	mol := ablationMolecule()
	ref, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	naive := ref.naiveResult()
	t := &Table{
		ID:     "Ablation: r6 vs r4 Born integral",
		Title:  "Surface r⁶ (Eq. 4) vs Coulomb-field r⁴ (Eq. 3)",
		Notes:  []string{"r⁴ systematically overestimates buried radii (Grycuk), shrinking |Epol|"},
		Header: []string{"Integral", "Epol (kcal/mol)", "vs r6-naive %", "mean Born radius"},
	}
	for _, integral := range []gb.Integral{gb.IntegralR6, gb.IntegralR4} {
		params := gb.DefaultParams()
		params.Integral = integral
		entry, err := systemFor(mol, params)
		if err != nil {
			return nil, err
		}
		res := entry.sys.RunSerial()
		mean := 0.0
		for _, r := range res.Born {
			mean += r
		}
		mean /= float64(len(res.Born))
		t.AddRow(integral.String(), fmt.Sprintf("%.2f", res.Epol),
			fmt.Sprintf("%+.3f", 100*(res.Epol-naive.Energy)/math.Abs(naive.Energy)),
			fmt.Sprintf("%.3f", mean))
	}
	return t, nil
}

// ablationNblist reproduces the §II octree-vs-nblist contrast: nonbonded
// list memory grows cubically with the cutoff while octree memory is
// parameter-independent, and list construction slows accordingly.
func ablationNblist(o Options) (*Table, error) {
	mol := ablationMolecule()
	positions := mol.Positions()
	tree := octree.Build(positions, 8)
	t := &Table{
		ID:    "Ablation: octree vs nblist",
		Title: "Memory vs cutoff (§II): nonbonded lists grow cubically, the octree is constant",
		Notes: []string{fmt.Sprintf("%d atoms; octree: %d bytes at every cutoff/ε",
			mol.NumAtoms(), tree.MemoryBytes())},
		Header: []string{"Cutoff Å", "nblist pairs", "nblist bytes", "octree bytes", "ratio"},
	}
	for _, cutoff := range []float64{6, 9, 12, 16, 20, 24} {
		pl, err := nblist.BuildPairList(positions, cutoff, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", cutoff),
			fmt.Sprintf("%d", pl.NumPairs()),
			fmt.Sprintf("%d", pl.MemoryBytes()),
			fmt.Sprintf("%d", tree.MemoryBytes()),
			fmt.Sprintf("%.1f", float64(pl.MemoryBytes())/float64(tree.MemoryBytes())))
	}
	return t, nil
}

// ablationDistData contrasts the paper's replicate-everything layout
// (§IV-A) with the distributed-data extension its conclusion proposes:
// per-rank memory versus the bundle traffic and modeled time it costs.
func ablationDistData(o Options) (*Table, error) {
	mol := ablationMolecule()
	entry, err := systemFor(mol, gb.DefaultParams())
	if err != nil {
		return nil, err
	}
	naive := entry.naiveResult()
	t := &Table{
		ID:    "Ablation: distributed data",
		Title: "Replicated data (§IV-A) vs distributed data (conclusion's proposal), 12 ranks",
		Notes: []string{
			"distributed: each rank holds its segment + one transient remote bundle",
		},
		Header: []string{"Layout", "Mem/rank", "P2P bytes", "Modeled time", "Epol err %"},
	}
	const P = 12
	repl, err := entry.sys.RunMPI(P)
	if err != nil {
		return nil, err
	}
	rb, err := priceOct(o, entry.sys, repl)
	if err != nil {
		return nil, err
	}
	dist, err := entry.sys.RunMPIDistributedData(P)
	if err != nil {
		return nil, err
	}
	db, err := priceOct(o, entry.sys, dist)
	if err != nil {
		return nil, err
	}
	data := entry.sys.DataBytes()
	errPct := func(e float64) string {
		return fmt.Sprintf("%+.4f", 100*(e-naive.Energy)/math.Abs(naive.Energy))
	}
	t.AddRow("replicated", fmt.Sprintf("%.2f MB", float64(data)/(1<<20)),
		"0", fmtSeconds(rb.TotalSeconds), errPct(repl.Epol))
	t.AddRow("distributed", fmt.Sprintf("%.2f MB", float64(2*data/P)/(1<<20)),
		fmt.Sprintf("%d", dist.Traffic.P2PBytes), fmtSeconds(db.TotalSeconds), errPct(dist.Epol))
	return t, nil
}
