package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
)

// The bench trajectory is the repo's perf history: cmd/benchjson runs
// the roster across the paper's driver layouts and emits one
// schema-versioned BENCH_<label>.json; cmd/benchdiff compares two such
// files and exits nonzero on regression (make bench-gate wires the
// committed BENCH_seed.json baseline into CI).
//
// A trajectory separates three signal classes:
//
//   - Ops and the counter-side histogram summaries are deterministic
//     workload invariants: ANY drift is reported, because it means the
//     algorithm did different work and the baseline must be consciously
//     regenerated.
//   - ModelSec is the deterministic α–β modeled time: a slowdown beyond
//     MaxModelRatio is a regression regardless of host noise.
//   - WallNs is host wall time (min over Repeats): kernels are compared
//     by ns/op ratio normalized by the geometric mean ratio across
//     kernels, which cancels a uniformly faster or slower host, so the
//     gate travels between the baseline machine and CI.

// TrajectorySchemaVersion is bumped on any incompatible change to the
// Trajectory JSON layout; benchdiff refuses mismatched schemas.
const TrajectorySchemaVersion = 1

// TrajectoryKernel is one (layout, molecule) cell of a trajectory.
type TrajectoryKernel struct {
	// Name is "layout/molecule" ("mpi4/1avx_a").
	Name string `json:"name"`
	// Atoms is the molecule size.
	Atoms int `json:"atoms"`
	// Ops is the deterministic interaction-evaluation count.
	Ops int64 `json:"ops"`
	// WallNs is the minimum in-process wall time over the repeats.
	WallNs int64 `json:"wall_ns"`
	// NsPerOp is WallNs / Ops — the noise-prone host signal benchdiff
	// normalizes before gating.
	NsPerOp float64 `json:"ns_per_op"`
	// ModelSec is the deterministic modeled total on the Table I machine.
	ModelSec float64 `json:"model_sec"`
}

// TrajectoryHist is the deterministic summary of one counter-side
// histogram accumulated across the whole collection run.
type TrajectoryHist struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Trajectory is one BENCH_<label>.json document.
type Trajectory struct {
	Schema   int                       `json:"schema"`
	Label    string                    `json:"label"`
	MaxAtoms int                       `json:"max_atoms"`
	Repeats  int                       `json:"repeats"`
	Kernels  []TrajectoryKernel        `json:"kernels"`
	Hists    map[string]TrajectoryHist `json:"hists"`
}

// trajectoryLayouts are the driver layouts every roster molecule runs
// under: the serial baseline, the three paper programs at gate-friendly
// widths, and the PR 8 multipole accuracy variants (serial runs at the
// order-p endpoints of the work/precision grid). Accuracy-variant
// kernels do NOT feed the shared recorder: the counter-side histogram
// summaries are gated as deterministic workload invariants against
// baselines that predate the variants.
var trajectoryLayouts = []struct {
	name string
	pool int          // shared-memory pool width (OCT_CILK)
	P, p int          // distributed layout (OCT_MPI / hybrid)
	acc  *gb.Accuracy // accuracy override (multipole kernels)
}{
	{name: "serial"},
	{name: "cilk4", pool: 4},
	{name: "mpi4", P: 4},
	{name: "hybrid2x2", P: 2, p: 2},
	// Monopole at the default ε: the paper's literal Fig. 2/3 scheme.
	{name: "serial-p0", acc: &gb.Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: gb.OrderMonopole}},
	// Quadrupole at loosened ε: the far end of the tuner's frontier —
	// the acceptance point that must beat serial-p0 on wall time for the
	// large molecules (see EXPERIMENTS.md, work/precision grid).
	{name: "serial-p2loose", acc: &gb.Accuracy{EpsBorn: 2.0, EpsEpol: 2.0, BinWidth: 0.2, QuadOrder: 1, Order: gb.OrderQuadrupole}},
}

// CollectTrajectory runs the roster × layout grid and assembles the
// trajectory. Each kernel runs `repeats` times and keeps the minimum
// wall time; the first repeat of every kernel feeds one shared recorder
// whose counter-side histogram summaries become the Hists section
// (deterministic: every contribution is a workload invariant).
func CollectTrajectory(o Options, label string, repeats int) (*Trajectory, error) {
	o = o.withDefaults()
	if repeats < 1 {
		repeats = 1
	}
	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	rec.SetLabel(label)
	traj := &Trajectory{
		Schema:   TrajectorySchemaVersion,
		Label:    label,
		MaxAtoms: o.MaxAtoms,
		Repeats:  repeats,
		Kernels:  []TrajectoryKernel{},
		Hists:    map[string]TrajectoryHist{},
	}
	params := gb.DefaultParams()
	for _, e := range roster(o.MaxAtoms) {
		mol := molecule.ZDockMolecule(e)
		entry, err := systemFor(mol, params)
		if err != nil {
			return nil, err
		}
		for _, lay := range trajectoryLayouts {
			// Accuracy-variant kernels run on a prepared system at the
			// variant point: moments are geometry, built once per molecule
			// like the octrees, not per repeat.
			sys := entry.sys
			if lay.acc != nil {
				var err error
				if sys, err = sys.WithAccuracy(*lay.acc); err != nil {
					return nil, fmt.Errorf("bench: trajectory kernel %s/%s: %w", lay.name, e.Name, err)
				}
			}
			var best *gb.Result
			for rep := 0; rep < repeats; rep++ {
				spec := gb.RunSpec{Processes: lay.P, ThreadsPerProcess: lay.p}
				if rep == 0 && lay.acc == nil {
					spec.Obs = rec
				}
				var pool *sched.Pool
				if lay.pool > 0 {
					pool = sched.New(lay.pool)
					spec.Pool = pool
				}
				res, err := sys.Run(spec)
				if pool != nil {
					pool.Close()
				}
				if err != nil {
					return nil, fmt.Errorf("bench: trajectory kernel %s/%s: %w", lay.name, e.Name, err)
				}
				if best == nil || res.Wall < best.Wall {
					best = res
				}
			}
			b, err := priceOct(o, sys, best)
			if err != nil {
				return nil, err
			}
			ops := best.TotalOps()
			k := TrajectoryKernel{
				Name:     lay.name + "/" + e.Name,
				Atoms:    e.Atoms,
				Ops:      ops,
				WallNs:   best.Wall.Nanoseconds(),
				ModelSec: b.TotalSeconds,
			}
			if ops > 0 {
				k.NsPerOp = float64(k.WallNs) / float64(ops)
			}
			traj.Kernels = append(traj.Kernels, k)
		}
	}
	for _, h := range rec.Histograms() {
		traj.Hists[h.Name] = TrajectoryHist{
			Count: h.Count, Sum: h.Sum, P50: h.P50, P90: h.P90, P99: h.P99,
		}
	}
	return traj, nil
}

// Write emits the trajectory as indented JSON.
func (t *Trajectory) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrajectory parses and schema-checks one trajectory document.
func ReadTrajectory(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("bench: parsing trajectory: %w", err)
	}
	if t.Schema != TrajectorySchemaVersion {
		return nil, fmt.Errorf("bench: trajectory schema %d, this tool speaks %d", t.Schema, TrajectorySchemaVersion)
	}
	return &t, nil
}

// DiffOptions are benchdiff's thresholds.
type DiffOptions struct {
	// MaxKernelRatio is the host-normalized ns/op ratio above which a
	// kernel is a regression. Zero means the default 1.6.
	MaxKernelRatio float64
	// MaxModelRatio is the deterministic modeled-seconds ratio above
	// which a kernel is a regression. Zero means the default 1.05.
	MaxModelRatio float64
	// MinWallNs exempts kernels faster than this from the wall-time gate
	// (their ns/op is noise-dominated; they still gate on Ops and
	// ModelSec). Zero means the default 1ms.
	MinWallNs int64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.MaxKernelRatio <= 0 {
		o.MaxKernelRatio = 1.6
	}
	if o.MaxModelRatio <= 0 {
		o.MaxModelRatio = 1.05
	}
	if o.MinWallNs <= 0 {
		o.MinWallNs = int64(1e6)
	}
	return o
}

// DiffFinding is one benchdiff result line.
type DiffFinding struct {
	Kernel string
	Detail string
}

func (f DiffFinding) String() string { return f.Kernel + ": " + f.Detail }

// Diff is the outcome of comparing two trajectories.
type Diff struct {
	// Regressions fail the gate (nonzero benchdiff exit).
	Regressions []DiffFinding
	// Notes are informational (new kernels, skipped comparisons).
	Notes []string
	// Added and Removed name the kernels present in only one trajectory,
	// in input order. Added kernels are informational (a baseline will
	// exist after the next regeneration); removed kernels additionally
	// fail the gate — a benchmark that silently vanishes is how coverage
	// rots.
	Added   []string
	Removed []string
	// HostRatio is the geometric-mean ns/op ratio new/old over the
	// gated kernels — the host-speed factor the per-kernel gate divides
	// out.
	HostRatio float64
}

// DiffTrajectories compares a new trajectory against an old baseline.
// See the package comment on the three signal classes; the wall-time
// gate divides every kernel's ns/op ratio by the geometric mean ratio so
// a uniformly slower host cancels while a single regressed kernel
// stands out.
func DiffTrajectories(old, new *Trajectory, opt DiffOptions) Diff {
	opt = opt.withDefaults()
	d := Diff{HostRatio: 1}
	oldByName := make(map[string]TrajectoryKernel, len(old.Kernels))
	for _, k := range old.Kernels {
		oldByName[k.Name] = k
	}
	newNames := make(map[string]bool, len(new.Kernels))

	// First pass: deterministic gates + collect wall ratios.
	type ratioEntry struct {
		name  string
		ratio float64
	}
	var ratios []ratioEntry
	logSum := 0.0
	for _, nk := range new.Kernels {
		newNames[nk.Name] = true
		ok, found := oldByName[nk.Name]
		if !found {
			d.Added = append(d.Added, nk.Name)
			d.Notes = append(d.Notes, "new kernel "+nk.Name+" (no baseline)")
			continue
		}
		if nk.Ops != ok.Ops {
			d.Regressions = append(d.Regressions, DiffFinding{nk.Name,
				fmt.Sprintf("workload drift: ops %d -> %d (regenerate the baseline if intended)", ok.Ops, nk.Ops)})
		}
		if ok.ModelSec > 0 && nk.ModelSec > ok.ModelSec*opt.MaxModelRatio {
			d.Regressions = append(d.Regressions, DiffFinding{nk.Name,
				fmt.Sprintf("modeled time %.4gs -> %.4gs (x%.3f > %.3f, deterministic)",
					ok.ModelSec, nk.ModelSec, nk.ModelSec/ok.ModelSec, opt.MaxModelRatio)})
		}
		if ok.WallNs < opt.MinWallNs || nk.WallNs < opt.MinWallNs ||
			ok.NsPerOp <= 0 || nk.NsPerOp <= 0 {
			d.Notes = append(d.Notes, fmt.Sprintf("%s below the %dms wall floor: ns/op not gated",
				nk.Name, opt.MinWallNs/int64(1e6)))
			continue
		}
		r := nk.NsPerOp / ok.NsPerOp
		ratios = append(ratios, ratioEntry{nk.Name, r})
		logSum += math.Log(r)
	}
	for _, k := range old.Kernels {
		if !newNames[k.Name] {
			d.Removed = append(d.Removed, k.Name)
			d.Regressions = append(d.Regressions, DiffFinding{k.Name,
				"kernel disappeared from the new trajectory"})
		}
	}

	// Second pass: host-normalized wall gate.
	if len(ratios) > 0 {
		d.HostRatio = math.Exp(logSum / float64(len(ratios)))
		for _, e := range ratios {
			adj := e.ratio / d.HostRatio
			if adj > opt.MaxKernelRatio {
				d.Regressions = append(d.Regressions, DiffFinding{e.name,
					fmt.Sprintf("ns/op x%.3f vs baseline (x%.3f after host normalization, gate %.3f)",
						e.ratio, adj, opt.MaxKernelRatio)})
			}
		}
	}

	// Histogram drift: the summaries are deterministic workload
	// invariants, so any change is the ops-drift class of finding.
	for _, name := range obs.SortedKeys(old.Hists) {
		oh := old.Hists[name]
		nh, found := new.Hists[name]
		if !found {
			d.Regressions = append(d.Regressions, DiffFinding{"hist " + name,
				"histogram disappeared from the new trajectory"})
			continue
		}
		if nh != oh {
			d.Regressions = append(d.Regressions, DiffFinding{"hist " + name,
				fmt.Sprintf("workload drift: count/sum/quantiles %+v -> %+v (regenerate the baseline if intended)", oh, nh)})
		}
	}
	for _, name := range obs.SortedKeys(new.Hists) {
		if _, found := old.Hists[name]; !found {
			d.Notes = append(d.Notes, "new histogram "+name+" (no baseline)")
		}
	}
	return d
}
