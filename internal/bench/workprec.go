package bench

import (
	"fmt"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/tune"
)

// workprec is the PR 8 work/precision curve: the accuracy grid the
// auto-tuner searches — expansion order p × the far-field ε ladder, bin
// width tied to ε — swept on the ablation molecule, each point reporting
// the model's error bound, the measured error against a tight reference,
// and the modeled serial time. The table is the evidence behind two
// claims of DESIGN.md §10: the per-term bound contains the measured
// error everywhere, and a higher order at loosened ε dominates lower
// orders at equal accuracy (the multipole trade: moments are cheap,
// near-field pairs are not).
func workprec(o Options) (*Table, error) {
	mol := ablationMolecule()
	params := gb.DefaultParams()
	params.Accuracy = gb.Accuracy{
		EpsBorn: 0.3, EpsEpol: 0.3, BinWidth: 0.3 / 8,
		QuadOrder: 1, Order: gb.OrderQuadrupole,
	}
	entry, err := systemFor(mol, params)
	if err != nil {
		return nil, err
	}
	ref := entry.sys.RunSerial()

	// The default point anchors the speedup column.
	defAcc := gb.DefaultAccuracy()
	defRes, err := entry.sys.Run(gb.RunSpec{Accuracy: &defAcc})
	if err != nil {
		return nil, err
	}
	defCost, err := priceOct(o, entry.sys, defRes)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Work/precision grid",
		Title: fmt.Sprintf("Order p × ε vs error and modeled time (%d atoms, reference ε = 0.3 quadrupole)", mol.NumAtoms()),
		Notes: []string{
			"the grid tune.Select searches: bin width = min(ε/4, 0.2), quadrature degree fixed at 1",
			"bound %: tune.RelErrorBound — the per-term model; err %: measured against the tight reference",
			"speedup: modeled serial seconds of the calibrated default (p = 1, ε = 0.9) over this point's",
		},
		Header: []string{"p", "eps", "Bound %", "Err %", "Total ops", "Modeled s", "Speedup"},
	}
	for ord := gb.OrderMonopole; ord <= gb.OrderQuadrupole; ord++ {
		for _, eps := range tune.DefaultEpsScales() {
			acc := gb.Accuracy{
				EpsBorn: eps, EpsEpol: eps,
				BinWidth:  math.Min(eps/4, 0.2),
				QuadOrder: 1, Order: ord,
			}
			res, err := entry.sys.Run(gb.RunSpec{Accuracy: &acc})
			if err != nil {
				return nil, err
			}
			b, err := priceOct(o, entry.sys, res)
			if err != nil {
				return nil, err
			}
			relErr := math.Abs(res.Epol-ref.Epol) / math.Abs(ref.Epol)
			t.AddRow(fmt.Sprintf("%d", ord),
				fmt.Sprintf("%.3f", eps),
				fmt.Sprintf("%.3f", 100*tune.RelErrorBound(acc)),
				fmt.Sprintf("%.4f", 100*relErr),
				fmt.Sprintf("%d", res.TotalOps()),
				fmt.Sprintf("%.3f", b.TotalSeconds),
				fmt.Sprintf("%.2f×", defCost.TotalSeconds/b.TotalSeconds))
		}
	}
	return t, nil
}
