package bench

import (
	"fmt"
	"time"

	"gbpolar/internal/baselines"
	"gbpolar/internal/gb"
	"gbpolar/internal/perf"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the large-molecule experiments (BTV 6M, CMV 509k
	// atoms) to Scale × the paper's size so they run on a laptop; 1.0
	// reproduces the full sizes. The tables state the realized size.
	Scale float64
	// Runs is the sample count for min/max envelopes (Fig. 6; paper: 20).
	Runs int
	// MaxAtoms caps the ZDock roster for quick runs (0 = the full
	// 453–16,301 range).
	MaxAtoms int
	// Machine and Cal are the performance model.
	Machine perf.Machine
	Cal     perf.Calibration
}

// DefaultOptions returns laptop-friendly defaults: 1% of BTV (60k atoms),
// 10% of CMV (51k atoms), 20-sample envelopes on the paper's machine.
func DefaultOptions() Options {
	return Options{
		Scale:   0.01,
		Runs:    20,
		Machine: perf.Lonestar4(),
		Cal:     perf.DefaultCalibration(),
	}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.Machine.CoresPerNode == 0 {
		o.Machine = d.Machine
	}
	if o.Cal == (perf.Calibration{}) {
		o.Cal = d.Cal
	}
	return o
}

// priceOct maps a gb.Result onto the machine and returns the modeled
// breakdown.
func priceOct(o Options, sys *gb.System, res *gb.Result) (perf.Breakdown, error) {
	shape := perf.RunShape{
		Processes:         res.Processes,
		ThreadsPerProcess: res.ThreadsPerProcess,
		DataBytes:         sys.DataBytes(),
	}
	return o.Machine.Price(o.Cal, shape, res.PerCoreOps, res.Traffic)
}

// priceOctNoisy returns the (min, max) modeled seconds over o.Runs
// jittered samples.
func priceOctNoisy(o Options, sys *gb.System, res *gb.Result, seed int64) (float64, float64, error) {
	shape := perf.RunShape{
		Processes:         res.Processes,
		ThreadsPerProcess: res.ThreadsPerProcess,
		DataBytes:         sys.DataBytes(),
	}
	return o.Machine.PriceNoisy(o.Cal, shape, res.PerCoreOps, res.Traffic, o.Runs, seed)
}

// priceBaseline models a comparator package's runtime: its pairwise ops at
// the machine's per-core rate scaled by the package's throughput constant
// and parallel efficiency over the given core count.
func priceBaseline(o Options, sp baselines.Spec, res *baselines.Result, cores int) float64 {
	if res.OOM {
		return 0
	}
	if cores < 1 {
		cores = 1
	}
	eff := sp.ParallelEfficiency
	if cores == 1 {
		eff = 1
	}
	rate := o.Machine.OpsPerSecond * sp.RateFactor * float64(cores) * eff
	return float64(res.Ops) / rate
}

// priceNaive models the serial naïve evaluator at the machine's full
// per-core rate (it is a plain pair loop — no package overhead).
func priceNaive(o Options, ops int64) float64 {
	return float64(ops) / o.Machine.OpsPerSecond
}

// fmtSeconds renders seconds with sensible units.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1:
		return fmt.Sprintf("%.3gms", s*1000)
	case s < 120:
		return fmt.Sprintf("%.3gs", s)
	default:
		return fmt.Sprintf("%.3gmin", s/60)
	}
}

// fmtDur renders a wall-clock duration compactly.
func fmtDur(d time.Duration) string { return fmtSeconds(d.Seconds()) }
