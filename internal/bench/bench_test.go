package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"gbpolar/internal/perf"
)

// quickOpts is a fast configuration for tests: tiny molecules, few runs.
func quickOpts() Options {
	return Options{
		Scale:    0.0008, // BTV → 4.8k atoms (floored to 2k min), CMV → ~2k
		Runs:     5,
		MaxAtoms: 1500,
		Machine:  perf.Lonestar4(),
		Cal:      perf.DefaultCalibration(),
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8a",
		"fig8b", "fig9", "fig10", "fig11", "memory"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, err := Run("nonsense", quickOpts()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo", Notes: []string{"note"},
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "x,y")
	var buf bytes.Buffer
	if err := tab.Print(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") || !strings.Contains(buf.String(), "note") {
		t.Errorf("Print output missing pieces:\n%s", buf.String())
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"x,y"`) {
		t.Errorf("CSV escaping broken:\n%s", buf.String())
	}
}

func TestTables1And2(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		tab, err := Run(id, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", id)
		}
	}
}

func TestFig5SpeedupGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	tab, err := Run("fig5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(btvNodeCounts) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Speedups (columns 4, 5) must grow substantially from 1 node to 36.
	first, err1 := strconv.ParseFloat(tab.Rows[0][4], 64)
	last, err2 := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][4], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable speedups: %v %v", tab.Rows[0], tab.Rows[len(tab.Rows)-1])
	}
	if first != 1 {
		t.Errorf("first speedup = %v", first)
	}
	if last < 4 {
		t.Errorf("OCT_MPI speedup at 36 nodes = %v, expected strong scaling", last)
	}
	hybLast, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][5], 64)
	if hybLast < 4 {
		t.Errorf("hybrid speedup at 36 nodes = %v", hybLast)
	}
}

func TestFig6EnvelopesOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	tab, err := Run("fig6", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for c := 1; c <= 3; c += 2 {
			lo := parseSeconds(t, row[c])
			hi := parseSeconds(t, row[c+1])
			if lo > hi {
				t.Errorf("row %v: min %v > max %v", row[0], lo, hi)
			}
		}
	}
}

func TestFig7And8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	o := quickOpts()
	tab, err := Run("fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("fig7 empty")
	}
	tab8, err := Run("fig8a", o)
	if err != nil {
		t.Fatal(err)
	}
	// Times grow with molecule size for the Naïve column (index of
	// Naïve in rosterPrograms + 2).
	naiveCol := 2
	for i, p := range rosterPrograms {
		if p == "Naïve" {
			naiveCol = i + 2
		}
	}
	firstNaive := parseSeconds(t, tab8.Rows[0][naiveCol])
	lastNaive := parseSeconds(t, tab8.Rows[len(tab8.Rows)-1][naiveCol])
	if lastNaive <= firstNaive {
		t.Errorf("naive time did not grow with size: %v vs %v", firstNaive, lastNaive)
	}
	tab8b, err := Run("fig8b", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab8b.Rows) != len(tab8.Rows)+1 { // + (max) row
		t.Errorf("fig8b rows = %d", len(tab8b.Rows))
	}
}

func TestFig9EnergiesNegativeAndClose(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	tab, err := Run("fig9", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// OCT_MPI (col 2) and Naïve (col 4) must agree within 3%.
		oct, err1 := strconv.ParseFloat(row[2], 64)
		naive, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable energies in %v", row)
		}
		if oct >= 0 || naive >= 0 {
			t.Errorf("%s: energies not negative: %v %v", row[0], oct, naive)
		}
		if rel := (oct - naive) / naive; rel < -0.03 || rel > 0.03 {
			t.Errorf("%s: OCT vs naive off by %.2f%%", row[0], rel*100)
		}
	}
}

func TestFig10ErrorGrowsWithEps(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	o := quickOpts()
	o.MaxAtoms = 900
	tab, err := Run("fig10", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	absErr := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad err cell %q", row[1])
		}
		if v < 0 {
			return -v
		}
		return v
	}
	if absErr(tab.Rows[8]) < absErr(tab.Rows[0]) {
		t.Errorf("error at ε=0.9 (%v) below ε=0.1 (%v)", absErr(tab.Rows[8]), absErr(tab.Rows[0]))
	}
}

func TestFig11AndMemory(t *testing.T) {
	o := quickOpts()
	tab, err := Run("fig11", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("fig11 rows = %d", len(tab.Rows))
	}
	// Octree programs must beat Amber by a large factor at CMV scale.
	for _, row := range tab.Rows {
		if row[0] == "Amber" {
			continue
		}
		sp, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[3])
		}
		if sp < 10 {
			t.Errorf("%s: speedup vs Amber only %v", row[0], sp)
		}
	}
	mem, err := Run("memory", o)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := strconv.ParseFloat(mem.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 5.5 || ratio > 6.5 {
		t.Errorf("memory ratio = %v, want ≈6", ratio)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	o := quickOpts()
	for _, id := range []string{"ablation-division", "ablation-math",
		"ablation-leaf", "ablation-binning", "ablation-stealing",
		"ablation-dynamic", "ablation-integral", "ablation-nblist",
		"ablation-distdata"} {
		tab, err := Run(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", id)
		}
	}
}

// parseSeconds decodes the fmtSeconds format back to seconds.
func parseSeconds(t *testing.T, s string) float64 {
	t.Helper()
	switch {
	case s == "-":
		return 0
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		if err != nil {
			t.Fatalf("bad time %q", s)
		}
		return v / 1000
	case strings.HasSuffix(s, "min"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "min"), 64)
		if err != nil {
			t.Fatalf("bad time %q", s)
		}
		return v * 60
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			t.Fatalf("bad time %q", s)
		}
		return v
	}
	t.Fatalf("bad time %q", s)
	return 0
}
