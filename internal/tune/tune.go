// Package tune is the work/precision auto-tuner above the gb Accuracy
// API: given a molecule and a target Epol error in kcal/mol, it searches
// the accuracy space — the far-field ε pair, the Born-class histogram
// bin width, the Dunavant quadrature degree, and the multipole expansion
// order — and returns the cheapest point that meets the target, together
// with the frontier of cheaper/looser points below it (the supervisor's
// relax ladder and the serving layer's shed schedule).
//
// The search has three ingredients:
//
//  1. A per-term error model (RelErrorBound). Every knob contributes an
//     independently bounded relative-error term:
//
//     - the two clustering terms are held at O((ε/2)²) by the
//     order-aware opening criteria — farBetaOrder and
//     epolFarFactorOrder fix the per-node truncation ratio across
//     orders, so a higher expansion order buys a LOOSER criterion at
//     the same predicted error, not a different error law;
//     - the histogram bin contributes a first-order term in the bin
//     width. This term is kept separate from the clustering terms on
//     purpose: measurement (PR 8) shows the binning bias is the Epol
//     accuracy floor and does not reliably cancel against the
//     far-field truncation, so summing the bounds is the honest
//     composition;
//     - the quadrature term decays geometrically in the rule degree
//     (the Dunavant rules gain two polynomial orders per degree on a
//     fixed icosphere mesh).
//
//     The constants are calibrated conservative: the model is used to
//     ORDER candidates and prune hopeless ones, and the verification
//     pass below — not the model — is what admits the returned point.
//
//  2. The perf cost model. Each candidate's interaction count is
//     estimated from the reference run's measured count scaled by the
//     opening-criterion geometry (near-field volume ∝ (β−1)⁻³ on the
//     Born side and ∝ factor³ on the energy side, quadrature-point count
//     from the Dunavant rule sizes, a per-order flop weight), then
//     priced to modeled serial seconds on the configured machine.
//
//  3. A verification pass. The molecule is first run once at a tight
//     reference point (order 2, ε = 0.3, fine bins, the highest
//     quadrature degree in the search); candidates are then run serially
//     — cheapest bound-admissible first, probing cheaper points while
//     they keep passing — and a point is admitted on its MEASURED
//     |Epol − reference| with margin. Every run is deterministic, so
//     Select itself is deterministic per (molecule, target, options).
//
// The chosen point is emitted into the obs Summary as tune.* counters
// (deterministic integers only, per the Summary contract).
package tune

import (
	"fmt"
	"math"
	"sort"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/quadrature"
	"gbpolar/internal/simmpi"
	"gbpolar/internal/surface"
)

// Error-model constants (see the package comment; conservative on
// purpose — admission is by measurement, the model orders and prunes).
const (
	// clusterCoeff scales the (ε/2)² truncation ratio of each far-field
	// criterion into a relative Epol error.
	clusterCoeff = 0.08
	// binCoeff is the relative Epol error per Å of histogram bin width.
	binCoeff = 0.02
	// quadCoeff is the relative error of the degree-1 Dunavant rule;
	// each additional degree divides it by quadDecay.
	quadCoeff = 0.02
	quadDecay = 4.0
	// acceptMargin shrinks the target for measured admission: a point is
	// accepted when measured ≤ acceptMargin·target, so the returned
	// point sits strictly inside the budget rather than on its edge.
	acceptMargin = 0.9
	// pruneSlack bounds which candidates are worth a verification run:
	// predicted error beyond pruneSlack·target is hopeless even after
	// discounting the model's conservatism.
	pruneSlack = 10.0
)

// Work-index constants: relative per-interaction flop weight of each
// expansion order, and the Born/energy share of a serial run's work.
// Heuristics for RANKING only — verified points carry measured counts.
var orderWork = [3]float64{0.7, 1.0, 2.4}

const (
	bornShare = 0.7
	epolShare = 0.3
)

// Point is one candidate accuracy configuration with its predicted and
// (when verified) measured behavior.
type Point struct {
	// Acc is the full accuracy specification, TargetError included.
	Acc gb.Accuracy
	// PredictedRelError is the per-term model bound, relative to the
	// reference |Epol|; PredictedError is the same in kcal/mol.
	PredictedRelError float64
	PredictedError    float64
	// MeasuredError is |Epol − reference| in kcal/mol from the
	// verification run; valid only when Verified.
	MeasuredError float64
	Verified      bool
	// Epol is the verification run's energy (Verified points only).
	Epol float64
	// Ops is the serial interaction count: measured for verified points,
	// the cost model's estimate otherwise.
	Ops int64
	// CostSeconds is the perf-modeled serial wall time of the point.
	CostSeconds float64
	// workIndex is the dimensionless ranking cost (see package comment).
	workIndex float64
}

// Options configures Select. The zero value is usable.
type Options struct {
	// Params supplies the non-accuracy physics parameters (solvent, tree
	// leaf sizes, ...). Zero means gb.DefaultParams(); the accuracy
	// fields are overridden per candidate either way.
	Params gb.Params
	// Surface is the base surface configuration; RuleDegree is
	// overridden per candidate quadrature order. Zero means
	// surface.DefaultConfig().
	Surface surface.Config
	// Machine and Cal price candidate costs (defaults: Lonestar4, the
	// default calibration).
	Machine perf.Machine
	Cal     perf.Calibration
	// MaxQuadOrder bounds the quadrature-degree dimension of the search
	// (default 2, Dunavant range 1..8). The reference point uses the
	// maximum degree searched.
	MaxQuadOrder int
	// MaxVerifyRuns bounds the verification runs after the reference run
	// (default 6). Exhausting the budget falls back to the reference
	// point itself, which meets any target by construction.
	MaxVerifyRuns int
	// EpsScales is the ε ladder of the grid, applied to both criteria
	// (default {0.3, 0.45, 0.675, 0.9, 1.35, 2.0}).
	EpsScales []float64
	// Obs receives the chosen point as tune.* counters. Nil is inert.
	Obs *obs.Recorder
}

// Selection is the result of one tuner search.
type Selection struct {
	// Point is the cheapest admitted point: its measured error meets the
	// target (the reference fallback meets it trivially).
	Point Point
	// Ladder is the shed schedule below Point: strictly cheaper points
	// at the same quadrature order (the surface cannot be rebuilt
	// mid-supervision), nearest-cost first with strictly increasing
	// predicted error. Each step's PredictedRelError prices the shed
	// accuracy into an ErrorBound.
	Ladder []Point
	// Candidates is the full evaluated grid, cheapest first.
	Candidates []Point
	// ReferenceEpol and ReferenceAcc describe the tight reference run
	// all errors are measured against.
	ReferenceEpol float64
	ReferenceAcc  gb.Accuracy
	// VerifyRuns is the number of candidate verification runs spent.
	VerifyRuns int
	// System and Surface are ready to run at Point.Acc (the surface is
	// built at Point's quadrature order).
	System  *gb.System
	Surface *surface.Surface
}

// DefaultEpsScales is the grid's ε ladder.
func DefaultEpsScales() []float64 { return []float64{0.3, 0.45, 0.675, 0.9, 1.35, 2.0} }

// knobs resolves a point's effective knob values (the same defaulting
// NewSystem applies: eps 0.9, degree 1, bin min(EpsEpol, 0.2)).
func knobs(a gb.Accuracy) (eb, ee, bin float64, q int) {
	eb, ee, q = a.EpsBorn, a.EpsEpol, a.QuadOrder
	if eb == 0 {
		eb = 0.9
	}
	if ee == 0 {
		ee = 0.9
	}
	if q == 0 {
		q = 1
	}
	bin = a.BinWidth
	if bin == 0 {
		bin = math.Min(ee, 0.2)
	}
	return eb, ee, bin, q
}

// RelErrorBound is the per-term error model: a conservative bound on the
// point's relative Epol error, composed as the SUM of the independent
// clustering, binning, and quadrature terms (no cancellation credit).
func RelErrorBound(acc gb.Accuracy) float64 {
	eb, ee, bin, q := knobs(acc)
	e := clusterCoeff * (eb / 2) * (eb / 2)
	e += clusterCoeff * (ee / 2) * (ee / 2)
	e += binCoeff * bin
	e += quadCoeff * math.Pow(quadDecay, float64(1-q))
	return e
}

// rulePoints returns the Dunavant rule size for a degree. Degrees reach
// this validated (1..8), so failures only surface misconfiguration.
func rulePoints(degree int) (float64, error) {
	r, err := quadrature.Dunavant(degree)
	if err != nil {
		return 0, fmt.Errorf("tune: %w", err)
	}
	return float64(r.NumPoints()), nil
}

// workIndexOf ranks a point's serial work against the calibrated
// default: quadrature-point count times the Born near-field volume
// (∝ (β−1)⁻³) on one side, the energy near-field volume (∝ factor³) on
// the other, each weighted by the order's per-interaction flop cost.
func workIndexOf(acc gb.Accuracy) (float64, error) {
	def := gb.DefaultAccuracy()
	_, _, _, q := knobs(acc)
	bornVol := math.Pow((def.OpeningBeta()-1)/(acc.OpeningBeta()-1), 3)
	epolVol := math.Pow(acc.OpeningFactor(1)/def.OpeningFactor(1), 3)
	w := orderWork[acc.Order]
	nqHi, err := rulePoints(q)
	if err != nil {
		return 0, err
	}
	nqLo, err := rulePoints(1)
	if err != nil {
		return 0, err
	}
	nq := nqHi / nqLo
	return bornShare*nq*bornVol*w + epolShare*epolVol*w, nil
}

// Select searches the accuracy space for the cheapest point whose
// measured |Epol − reference| meets targetKcal on this molecule. It is
// deterministic per (molecule, target, options).
func Select(mol *molecule.Molecule, targetKcal float64, opt Options) (*Selection, error) {
	if mol == nil || mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("tune: nil or empty molecule")
	}
	if !(targetKcal > 0) {
		return nil, fmt.Errorf("tune: target error %v kcal/mol must be positive", targetKcal)
	}
	if opt.Machine.OpsPerSecond <= 0 {
		opt.Machine = perf.Lonestar4()
	}
	if opt.Cal == (perf.Calibration{}) {
		opt.Cal = perf.DefaultCalibration()
	}
	if opt.MaxQuadOrder <= 0 {
		opt.MaxQuadOrder = 2
	}
	if opt.MaxQuadOrder > 8 {
		return nil, fmt.Errorf("tune: MaxQuadOrder %d outside the Dunavant range 1..8", opt.MaxQuadOrder)
	}
	if opt.MaxVerifyRuns <= 0 {
		opt.MaxVerifyRuns = 6
	}
	if len(opt.EpsScales) == 0 {
		opt.EpsScales = DefaultEpsScales()
	}
	baseParams := opt.Params
	if baseParams == (gb.Params{}) {
		baseParams = gb.DefaultParams()
	}
	baseSurf := opt.Surface
	if baseSurf == (surface.Config{}) {
		baseSurf = surface.DefaultConfig()
	}

	// Lazily built surface + system per quadrature order. The system is
	// built AT the reference accuracy (order 2), so every lower-order
	// candidate at that degree is a cheap RunSpec.Accuracy override.
	refAcc := gb.Accuracy{
		EpsBorn: 0.3, EpsEpol: 0.3, BinWidth: 0.3 / 8,
		QuadOrder: opt.MaxQuadOrder, Order: gb.OrderQuadrupole,
	}
	surfs := make(map[int]*surface.Surface)
	systems := make(map[int]*gb.System)
	getSystem := func(q int) (*gb.System, *surface.Surface, error) {
		if s, ok := systems[q]; ok {
			return s, surfs[q], nil
		}
		cfg := baseSurf
		cfg.RuleDegree = q
		surf, err := surface.Build(mol, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("tune: building degree-%d surface: %w", q, err)
		}
		p := baseParams
		acc := refAcc
		acc.QuadOrder = q
		p.Accuracy = acc
		sys, err := gb.NewSystem(mol, surf, p)
		if err != nil {
			return nil, nil, fmt.Errorf("tune: building degree-%d system: %w", q, err)
		}
		surfs[q], systems[q] = surf, sys
		return sys, surf, nil
	}

	// Reference run: tight point, highest searched degree.
	refSys, _, err := getSystem(opt.MaxQuadOrder)
	if err != nil {
		return nil, err
	}
	refRes, err := refSys.Run(gb.RunSpec{})
	if err != nil {
		return nil, fmt.Errorf("tune: reference run: %w", err)
	}
	refEpol := refRes.Epol
	refOps := int64(0)
	for _, o := range refRes.PerCoreOps {
		refOps += o
	}
	refIndex, err := workIndexOf(refAcc)
	if err != nil {
		return nil, err
	}

	price := func(ops int64, q int) float64 {
		nqc, err1 := rulePoints(q)
		nqr, err2 := rulePoints(opt.MaxQuadOrder)
		if err1 != nil || err2 != nil {
			return math.Inf(1)
		}
		nq := int(float64(len(refSys.Surf.Points)) * nqc / nqr)
		shape := perf.RunShape{Processes: 1, ThreadsPerProcess: 1,
			DataBytes: perf.EstimateDataBytes(mol.NumAtoms(), nq)}
		b, err := opt.Machine.Price(opt.Cal, shape, []int64{ops}, simmpi.Stats{})
		if err != nil {
			return math.Inf(1)
		}
		return b.TotalSeconds
	}

	// Candidate grid: orders × quadrature degrees × the ε ladder, bin
	// width tied to the ε scale (bin = min(ε/4, 0.2): the binning term
	// must shrink with the clustering terms or it floors the error).
	var cands []Point
	for q := 1; q <= opt.MaxQuadOrder; q++ {
		for ord := gb.OrderMonopole; ord <= gb.OrderQuadrupole; ord++ {
			for _, scale := range opt.EpsScales {
				acc := gb.Accuracy{
					EpsBorn: scale, EpsEpol: scale,
					BinWidth:  math.Min(scale/4, 0.2),
					QuadOrder: q, Order: ord, TargetError: targetKcal,
				}
				if acc.Validate() != nil {
					continue
				}
				wi, err := workIndexOf(acc)
				if err != nil {
					return nil, err
				}
				pt := Point{Acc: acc, workIndex: wi}
				pt.PredictedRelError = RelErrorBound(acc)
				pt.PredictedError = pt.PredictedRelError * math.Abs(refEpol)
				pt.Ops = int64(float64(refOps) * pt.workIndex / refIndex)
				pt.CostSeconds = price(pt.Ops, q)
				cands = append(cands, pt)
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := &cands[i], &cands[j]
		if a.workIndex < b.workIndex {
			return true
		}
		if b.workIndex < a.workIndex {
			return false
		}
		if a.Acc.Order != b.Acc.Order {
			return a.Acc.Order < b.Acc.Order
		}
		if a.Acc.QuadOrder != b.Acc.QuadOrder {
			return a.Acc.QuadOrder < b.Acc.QuadOrder
		}
		return a.Acc.EpsEpol > b.Acc.EpsEpol
	})

	sel := &Selection{
		Candidates:    cands,
		ReferenceEpol: refEpol,
		ReferenceAcc:  refAcc,
	}

	// verify runs candidate i serially and records the measured error.
	verify := func(i int) (bool, error) {
		pt := &cands[i]
		sys, _, err := getSystem(pt.Acc.QuadOrder)
		if err != nil {
			return false, err
		}
		acc := pt.Acc
		res, err := sys.Run(gb.RunSpec{Accuracy: &acc})
		if err != nil {
			return false, fmt.Errorf("tune: verifying %+v: %w", pt.Acc, err)
		}
		sel.VerifyRuns++
		pt.Verified = true
		pt.Epol = res.Epol
		pt.MeasuredError = math.Abs(res.Epol - refEpol)
		ops := int64(0)
		for _, o := range res.PerCoreOps {
			ops += o
		}
		pt.Ops = ops
		pt.CostSeconds = price(ops, pt.Acc.QuadOrder)
		return pt.MeasuredError <= acceptMargin*targetKcal, nil
	}

	// Start at the cheapest bound-admissible candidate, then probe
	// cheaper points while they keep passing (the model is conservative,
	// so cheaper-than-bound points often measure fine); if the start
	// itself fails, walk up toward tighter points.
	start := -1
	for i := range cands {
		if cands[i].PredictedError <= targetKcal {
			start = i
			break
		}
	}
	if start < 0 {
		start = len(cands) // no bound-admissible point: walk nothing, fall back
	}
	chosen := -1
	// probeDown verifies candidates from `from` toward cheaper points
	// while they keep passing, keeping the cheapest that passed. With
	// slackGate, points whose bound is hopeless (beyond pruneSlack×) are
	// not worth a run.
	probeDown := func(from int, slackGate bool) error {
		for i := from; i >= 0 && sel.VerifyRuns < opt.MaxVerifyRuns; i-- {
			if slackGate && cands[i].PredictedError > pruneSlack*targetKcal {
				break
			}
			ok, err := verify(i)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			chosen = i
		}
		return nil
	}
	if start < len(cands) {
		ok, err := verify(start)
		if err != nil {
			return nil, err
		}
		if ok {
			chosen = start
			if err := probeDown(start-1, true); err != nil {
				return nil, err
			}
		} else {
			for i := start + 1; i < len(cands) && sel.VerifyRuns < opt.MaxVerifyRuns; i++ {
				ok, err := verify(i)
				if err != nil {
					return nil, err
				}
				if ok {
					chosen = i
					break
				}
			}
		}
	} else if len(cands) > 0 {
		// No candidate's BOUND meets the target. The bounds are
		// conservative, so measure from the tightest end of the grid
		// before conceding to the reference fallback.
		if err := probeDown(len(cands)-1, false); err != nil {
			return nil, err
		}
	}

	if chosen >= 0 {
		sel.Point = cands[chosen]
	} else {
		// Fallback: the reference point itself — zero measured error
		// against the reference by construction, so any positive target
		// is met.
		ref := refAcc
		ref.TargetError = targetKcal
		sel.Point = Point{
			Acc: ref, PredictedRelError: RelErrorBound(ref),
			MeasuredError: 0, Verified: true, Epol: refEpol,
			Ops: refOps, CostSeconds: price(refOps, refAcc.QuadOrder),
			workIndex: refIndex,
		}
		sel.Point.PredictedError = sel.Point.PredictedRelError * math.Abs(refEpol)
		opt.Obs.Count("tune.fallback_reference", 1)
	}

	// Shed ladder: strictly cheaper points at the selected quadrature
	// order (WithAccuracy cannot rebuild the surface), nearest-cost
	// first, predicted error strictly increasing, capped at 4 steps.
	lastErr := sel.Point.PredictedRelError
	for i := indexBelow(cands, sel.Point.workIndex); i >= 0 && len(sel.Ladder) < 4; i-- {
		c := cands[i]
		if c.Acc.QuadOrder != sel.Point.Acc.QuadOrder {
			continue
		}
		if c.PredictedRelError <= lastErr {
			continue
		}
		lastErr = c.PredictedRelError
		sel.Ladder = append(sel.Ladder, c)
	}

	sys, surf, err := getSystem(sel.Point.Acc.QuadOrder)
	if err != nil {
		return nil, err
	}
	tuned, err := sys.WithAccuracy(sel.Point.Acc)
	if err != nil {
		return nil, fmt.Errorf("tune: configuring selected point: %w", err)
	}
	sel.System = tuned
	sel.Surface = surf

	emit(opt.Obs, sel, targetKcal)
	return sel, nil
}

// indexBelow returns the largest index whose workIndex is strictly below
// w (cands sorted ascending), or -1.
func indexBelow(cands []Point, w float64) int {
	i := sort.Search(len(cands), func(i int) bool { return cands[i].workIndex >= w })
	return i - 1
}

// milli and micro render knobs as deterministic Summary integers.
func milli(v float64) int64 { return int64(math.Round(v * 1e3)) }
func micro(v float64) int64 { return int64(math.Round(v * 1e6)) }

// emit publishes the chosen point into the recorder's Summary-side
// counters (integers only — the Summary contract).
func emit(rec *obs.Recorder, sel *Selection, target float64) {
	rec.Count("tune.candidates", int64(len(sel.Candidates)))
	rec.Count("tune.verify_runs", int64(sel.VerifyRuns))
	a := sel.Point.Acc
	rec.Count("tune.selected.order", int64(a.Order))
	rec.Count("tune.selected.quad_order", int64(a.QuadOrder))
	rec.Count("tune.selected.eps_born_milli", milli(a.EpsBorn))
	rec.Count("tune.selected.eps_epol_milli", milli(a.EpsEpol))
	rec.Count("tune.selected.bin_milli", milli(a.BinWidth))
	rec.Count("tune.selected.ladder_steps", int64(len(sel.Ladder)))
	rec.Count("tune.target_micro_kcal", micro(target))
	rec.Count("tune.selected.predicted_micro_kcal", micro(sel.Point.PredictedError))
	rec.Count("tune.selected.measured_micro_kcal", micro(sel.Point.MeasuredError))
}
