package tune

import (
	"math"
	"os"
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

// rosterSubset picks the roster molecules the property test sweeps: a
// small/medium/large slice by default, the whole ZDock roster when
// GBTUNE_ROSTER=full (the acceptance sweep — minutes, not seconds).
func rosterSubset(t *testing.T) []molecule.BenchmarkEntry {
	roster := molecule.ZDockRoster()
	if os.Getenv("GBTUNE_ROSTER") == "full" {
		return roster
	}
	if testing.Short() {
		return []molecule.BenchmarkEntry{roster[0]}
	}
	return []molecule.BenchmarkEntry{roster[0], roster[6], roster[12]}
}

// TestSelectMeetsTargetAcrossRoster is the tuner property test: on every
// roster molecule swept, the selected point's measured error meets the
// target, and an INDEPENDENT re-run of the returned system confirms the
// measurement (the selection is not allowed to grade its own homework).
func TestSelectMeetsTargetAcrossRoster(t *testing.T) {
	for _, e := range rosterSubset(t) {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			mol := molecule.ZDockMolecule(e)
			const target = 1.0 // kcal/mol
			sel, err := Select(mol, target, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sel.Point.Verified {
				t.Error("selected point is not verified")
			}
			if sel.Point.MeasuredError > target {
				t.Errorf("measured error %v exceeds target %v", sel.Point.MeasuredError, target)
			}
			if sel.Point.Acc.TargetError != target {
				t.Errorf("selected Acc.TargetError = %v, want %v", sel.Point.Acc.TargetError, target)
			}
			if sel.System == nil || sel.Surface == nil {
				t.Fatal("selection carries no ready system/surface")
			}
			// Independent check: run the returned system and measure
			// against the reference ourselves.
			res := sel.System.RunSerial()
			if got := math.Abs(res.Epol - sel.ReferenceEpol); got > target {
				t.Errorf("re-run error %v exceeds target %v (reference %v, re-run %v)",
					got, target, sel.ReferenceEpol, res.Epol)
			}
			if math.Float64bits(res.Epol) != math.Float64bits(sel.Point.Epol) {
				t.Errorf("re-run Epol %v differs from the verification run's %v", res.Epol, sel.Point.Epol)
			}
		})
	}
}

// TestSelectTightTargetStaysAdmissible pins the tight end: a target of
// 0.05 kcal/mol — below every coarse candidate's bound — still returns
// an admissible point (a tight candidate or the reference fallback).
func TestSelectTightTargetStaysAdmissible(t *testing.T) {
	mol := molecule.ZDockMolecule(molecule.ZDockRoster()[0])
	const target = 0.05
	sel, err := Select(mol, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Point.Verified || sel.Point.MeasuredError > target {
		t.Errorf("tight target: verified=%v measured=%v target=%v",
			sel.Point.Verified, sel.Point.MeasuredError, target)
	}
	res := sel.System.RunSerial()
	if got := math.Abs(res.Epol - sel.ReferenceEpol); got > target {
		t.Errorf("re-run error %v exceeds tight target %v", got, target)
	}
}

// TestSelectDeterministic pins Select's determinism contract: two
// searches over the same (molecule, target, options) produce the same
// point, bit for bit, and the same ladder.
func TestSelectDeterministic(t *testing.T) {
	mol := molecule.ZDockMolecule(molecule.ZDockRoster()[0])
	a, err := Select(mol, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(mol, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Point.Acc != b.Point.Acc {
		t.Errorf("selected points differ: %+v vs %+v", a.Point.Acc, b.Point.Acc)
	}
	if math.Float64bits(a.Point.Epol) != math.Float64bits(b.Point.Epol) {
		t.Errorf("selected Epol not bitwise reproducible: %x vs %x",
			math.Float64bits(a.Point.Epol), math.Float64bits(b.Point.Epol))
	}
	if math.Float64bits(a.ReferenceEpol) != math.Float64bits(b.ReferenceEpol) {
		t.Errorf("reference Epol not bitwise reproducible")
	}
	if a.VerifyRuns != b.VerifyRuns {
		t.Errorf("verify runs differ: %d vs %d", a.VerifyRuns, b.VerifyRuns)
	}
	if len(a.Ladder) != len(b.Ladder) {
		t.Fatalf("ladder lengths differ: %d vs %d", len(a.Ladder), len(b.Ladder))
	}
	for i := range a.Ladder {
		if a.Ladder[i].Acc != b.Ladder[i].Acc {
			t.Errorf("ladder step %d differs: %+v vs %+v", i, a.Ladder[i].Acc, b.Ladder[i].Acc)
		}
	}
}

// TestSelectLadderIsAdmissibleFrontier pins the shed schedule's shape:
// every step shares the selected quadrature order (the surface cannot be
// rebuilt mid-supervision), predicted error strictly increases down the
// ladder, and the cap holds.
func TestSelectLadderIsAdmissibleFrontier(t *testing.T) {
	mol := molecule.ZDockMolecule(molecule.ZDockRoster()[0])
	sel, err := Select(mol, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Ladder) > 4 {
		t.Errorf("ladder has %d steps, cap is 4", len(sel.Ladder))
	}
	last := sel.Point.PredictedRelError
	for i, step := range sel.Ladder {
		if step.Acc.QuadOrder != sel.Point.Acc.QuadOrder {
			t.Errorf("ladder step %d changes quadrature order %d -> %d",
				i, sel.Point.Acc.QuadOrder, step.Acc.QuadOrder)
		}
		if step.PredictedRelError <= last {
			t.Errorf("ladder step %d predicted error %v does not increase past %v",
				i, step.PredictedRelError, last)
		}
		last = step.PredictedRelError
	}
}

// TestSelectEmitsSummaryCounters checks the obs contract: the chosen
// point lands in the recorder as deterministic integer counters.
func TestSelectEmitsSummaryCounters(t *testing.T) {
	mol := molecule.ZDockMolecule(molecule.ZDockRoster()[0])
	rec := obs.NewRecorder(nil)
	sel, err := Select(mol, 1.0, Options{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c["tune.candidates"] != int64(len(sel.Candidates)) {
		t.Errorf("tune.candidates = %d, want %d", c["tune.candidates"], len(sel.Candidates))
	}
	if c["tune.verify_runs"] != int64(sel.VerifyRuns) {
		t.Errorf("tune.verify_runs = %d, want %d", c["tune.verify_runs"], sel.VerifyRuns)
	}
	if c["tune.selected.order"] != int64(sel.Point.Acc.Order) {
		t.Errorf("tune.selected.order = %d, want %d", c["tune.selected.order"], sel.Point.Acc.Order)
	}
	if c["tune.selected.quad_order"] != int64(sel.Point.Acc.QuadOrder) {
		t.Errorf("tune.selected.quad_order = %d, want %d",
			c["tune.selected.quad_order"], sel.Point.Acc.QuadOrder)
	}
	if c["tune.target_micro_kcal"] != 1_000_000 {
		t.Errorf("tune.target_micro_kcal = %d, want 1000000", c["tune.target_micro_kcal"])
	}
	if _, ok := c["tune.selected.eps_epol_milli"]; !ok {
		t.Error("tune.selected.eps_epol_milli counter missing")
	}
}

// TestSelectRejectsBadInput pins the input validation.
func TestSelectRejectsBadInput(t *testing.T) {
	mol := molecule.ZDockMolecule(molecule.ZDockRoster()[0])
	if _, err := Select(nil, 1.0, Options{}); err == nil {
		t.Error("nil molecule accepted")
	}
	if _, err := Select(mol, 0, Options{}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Select(mol, -1, Options{}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := Select(mol, math.NaN(), Options{}); err == nil {
		t.Error("NaN target accepted")
	}
	if _, err := Select(mol, 1.0, Options{MaxQuadOrder: 9}); err == nil {
		t.Error("MaxQuadOrder beyond the Dunavant range accepted")
	}
}

// TestRelErrorBoundShape pins the per-term model's monotonicity: the
// bound loosens with ε and bin width, tightens with quadrature degree,
// and is order-independent (the order-aware opening criteria hold the
// truncation ratio fixed across orders — order buys WORK, not error).
func TestRelErrorBoundShape(t *testing.T) {
	base := gb.Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, BinWidth: 0.2, QuadOrder: 1, Order: 1}
	b0 := RelErrorBound(base)
	if !(b0 > 0) {
		t.Fatalf("bound %v, want positive", b0)
	}
	tighterEps := base
	tighterEps.EpsBorn, tighterEps.EpsEpol = 0.45, 0.45
	if RelErrorBound(tighterEps) >= b0 {
		t.Errorf("tighter eps did not tighten the bound: %v vs %v", RelErrorBound(tighterEps), b0)
	}
	finerBin := base
	finerBin.BinWidth = 0.05
	if RelErrorBound(finerBin) >= b0 {
		t.Errorf("finer bins did not tighten the bound: %v vs %v", RelErrorBound(finerBin), b0)
	}
	higherQuad := base
	higherQuad.QuadOrder = 2
	if RelErrorBound(higherQuad) >= b0 {
		t.Errorf("higher quadrature did not tighten the bound: %v vs %v", RelErrorBound(higherQuad), b0)
	}
	for ord := gb.OrderMonopole; ord <= gb.OrderQuadrupole; ord++ {
		p := base
		p.Order = ord
		if got := RelErrorBound(p); got != b0 {
			t.Errorf("order %d changed the bound: %v vs %v (the opening criteria are order-aware)",
				ord, got, b0)
		}
	}
}

// TestDriversWithinBoundAtHigherOrders is the |Epol − Epol_ref| ≤
// ErrorBound regression of PR 8 for p = 1 and p = 2 on every driver:
// serial, shared-memory, message-passing, and hybrid runs at a coarse
// accuracy point must all land within the model bound of the tight
// reference, and each layout must be bitwise reproducible.
func TestDriversWithinBoundAtHigherOrders(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("bound", 500, 61), 500, 61)
	cfg := surface.DefaultConfig()
	cfg.RuleDegree = 2
	surf, err := surface.Build(mol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := gb.DefaultParams()
	params.Accuracy = gb.Accuracy{
		EpsBorn: 0.3, EpsEpol: 0.3, BinWidth: 0.3 / 8,
		QuadOrder: 2, Order: gb.OrderQuadrupole,
	}
	sys, err := gb.NewSystem(mol, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	ref := sys.RunSerial()

	for _, ord := range []int{gb.OrderDipole, gb.OrderQuadrupole} {
		acc := gb.Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 2, Order: ord}
		bound := RelErrorBound(acc) * math.Abs(ref.Epol)
		pool := sched.New(4)
		drivers := []struct {
			name string
			run  func() (*gb.Result, error)
		}{
			{"serial", func() (*gb.Result, error) { return sys.Run(gb.RunSpec{Accuracy: &acc}) }},
			{"cilk", func() (*gb.Result, error) { return sys.Run(gb.RunSpec{Pool: pool, Accuracy: &acc}) }},
			{"mpi", func() (*gb.Result, error) { return sys.Run(gb.RunSpec{Processes: 3, Accuracy: &acc}) }},
			{"hybrid", func() (*gb.Result, error) {
				return sys.Run(gb.RunSpec{Processes: 2, ThreadsPerProcess: 2, Accuracy: &acc})
			}},
		}
		for _, d := range drivers {
			a, err := d.run()
			if err != nil {
				t.Fatalf("p=%d %s: %v", ord, d.name, err)
			}
			b, err := d.run()
			if err != nil {
				t.Fatalf("p=%d %s rerun: %v", ord, d.name, err)
			}
			if math.Float64bits(a.Epol) != math.Float64bits(b.Epol) {
				t.Errorf("p=%d %s: Epol not bitwise reproducible: %v vs %v", ord, d.name, a.Epol, b.Epol)
			}
			if got := math.Abs(a.Epol - ref.Epol); got > bound {
				t.Errorf("p=%d %s: |Epol − ref| = %v exceeds model bound %v", ord, d.name, got, bound)
			}
		}
		pool.Close()
	}
}
