// End-to-end integration tests: the flows a downstream user strings
// together — file I/O → surface → system → drivers → energies — exercised
// through the public package APIs the way cmd/gbpol does.
package gbpolar_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"gbpolar/internal/dock"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/pb"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

// TestPipelineFromPQRFile drives the full stack from a file on disk:
// generate → save as PQR → load → surface → octrees → all four drivers →
// identical energies.
func TestPipelineFromPQRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "protein.pqr")
	orig := molecule.Exactly(molecule.Globule("filetest", 600, 2026), 600, 2026)
	if err := molecule.SaveFile(path, orig); err != nil {
		t.Fatal(err)
	}
	mol, err := molecule.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if mol.NumAtoms() != orig.NumAtoms() {
		t.Fatalf("loaded %d atoms, wrote %d", mol.NumAtoms(), orig.NumAtoms())
	}
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	serial := sys.RunSerial()
	if serial.Epol >= 0 {
		t.Fatalf("Epol = %v", serial.Epol)
	}
	pool := sched.New(4)
	cilk := sys.RunCilk(pool)
	pool.Close()
	mpi, err := sys.RunMPI(6)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := sys.RunHybrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := sys.RunMPIDynamic(4)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]float64{
		"cilk": cilk.Epol, "mpi": mpi.Epol, "hybrid": hyb.Epol, "dynamic": dyn.Epol,
	} {
		if rel := math.Abs(e-serial.Epol) / math.Abs(serial.Epol); rel > 1e-12 {
			t.Errorf("%s energy differs from serial by %v", name, rel)
		}
	}
	// PQR round trip quantizes coordinates to 1e-3 Å: energy from the
	// file-loaded molecule matches the original within that noise.
	surfO, err := surface.Build(orig, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sysO, err := gb.NewSystem(orig, surfO, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sysO.RunSerial().Epol-serial.Epol) / math.Abs(serial.Epol); rel > 1e-3 {
		t.Errorf("file round trip changed energy by %v", rel)
	}
}

// TestModelLadderConsistency: Poisson, exact GB and octree GB must all
// agree on sign and order of magnitude for one molecule (the validation
// ladder of examples/validation).
func TestModelLadderConsistency(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("ladder", 100, 9), 100, 9)
	pbRes, err := pb.Solve(mol, pb.Config{Dim: 49})
	if err != nil {
		t.Fatal(err)
	}
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := sys.NaiveBornRadiiR6()
	exact, _ := sys.NaiveEpol(radii)
	oct := sys.RunSerial().Epol
	for name, e := range map[string]float64{"pb": pbRes.Epol, "gb": exact, "oct": oct} {
		if e >= 0 {
			t.Errorf("%s energy %v not negative", name, e)
		}
	}
	if r := exact / pbRes.Epol; r < 0.3 || r > 3 {
		t.Errorf("GB/PB ratio %v outside order-of-magnitude band", r)
	}
	if r := oct / exact; r < 0.95 || r > 1.05 {
		t.Errorf("octree/exact ratio %v", r)
	}
}

// TestDockingFlow: the docking API end to end on small inputs.
func TestDockingFlow(t *testing.T) {
	rec := molecule.Exactly(molecule.Globule("rec", 400, 3), 400, 3)
	lig := molecule.Exactly(molecule.Globule("lig", 40, 5), 40, 5)
	scorer, err := dock.NewScorer(rec, lig, gb.DefaultParams(), surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(2)
	defer pool.Close()
	scores, err := scorer.ScoreAll(pool, scorer.SpherePoses(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 {
		t.Fatalf("scores = %d", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].DeltaEpol < scores[i-1].DeltaEpol {
			t.Fatal("not sorted")
		}
	}
}

// TestXYZRQRoundTripEnergyExact: the plain-text format stores enough
// digits that energies survive a save/load cycle almost exactly.
func TestXYZRQRoundTripEnergyExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.xyzrq")
	mol := molecule.Exactly(molecule.Globule("x", 200, 4), 200, 4)
	if err := molecule.SaveFile(path, mol); err != nil {
		t.Fatal(err)
	}
	loaded, err := molecule.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := epolOf(t, mol)
	e2 := epolOf(t, loaded)
	if rel := math.Abs(e1-e2) / math.Abs(e1); rel > 1e-4 {
		t.Errorf("round trip energy drift %v", rel)
	}
	// Clean up is automatic (t.TempDir), but verify the file existed.
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func epolOf(t *testing.T, m *molecule.Molecule) float64 {
	t.Helper()
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gb.NewSystem(m, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return sys.RunSerial().Epol
}
