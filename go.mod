module gbpolar

go 1.24
