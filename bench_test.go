// Package gbpolar's root benchmark suite: one testing.B benchmark per
// table and figure of the paper (DESIGN.md §4), each running a
// laptop-scale version of the corresponding experiment. The full-scale
// rows are produced by cmd/benchtables; these benches give `go test
// -bench=.` coverage of every experiment path plus microbenches of the
// hot kernels.
package gbpolar_test

import (
	"testing"

	"gbpolar/internal/bench"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

// benchOpts shrinks every experiment to benchmark-friendly size.
func benchOpts() bench.Options {
	return bench.Options{
		Scale:    0.0008,
		Runs:     5,
		MaxAtoms: 1200,
		Machine:  perf.Lonestar4(),
		Cal:      perf.DefaultCalibration(),
	}
}

// runExperiment benchmarks one experiment id end to end.
func runExperiment(b *testing.B, id string) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)             { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)             { runExperiment(b, "table2") }
func BenchmarkFig5Scalability(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig6Envelopes(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7OctreePrograms(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8aRunningTimes(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFig8bSpeedups(b *testing.B)      { runExperiment(b, "fig8b") }
func BenchmarkFig9Energies(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10EpsilonSweep(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11LargeMolecule(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkMemoryReplication(b *testing.B)  { runExperiment(b, "memory") }

func BenchmarkAblationDivision(b *testing.B) { runExperiment(b, "ablation-division") }
func BenchmarkAblationMath(b *testing.B)     { runExperiment(b, "ablation-math") }
func BenchmarkAblationLeaf(b *testing.B)     { runExperiment(b, "ablation-leaf") }
func BenchmarkAblationBinning(b *testing.B)  { runExperiment(b, "ablation-binning") }
func BenchmarkAblationStealing(b *testing.B) { runExperiment(b, "ablation-stealing") }
func BenchmarkAblationDynamic(b *testing.B)  { runExperiment(b, "ablation-dynamic") }
func BenchmarkAblationIntegral(b *testing.B) { runExperiment(b, "ablation-integral") }
func BenchmarkAblationNblist(b *testing.B)   { runExperiment(b, "ablation-nblist") }
func BenchmarkAblationDistData(b *testing.B) { runExperiment(b, "ablation-distdata") }

// --- microbenches of the building blocks --------------------------------

// benchSystem builds one shared medium system.
func benchSystem(b *testing.B, atoms int) *gb.System {
	b.Helper()
	mol := molecule.Exactly(molecule.Globule("bench", atoms, 99), atoms, 99)
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkOctreeBuild(b *testing.B) {
	mol := molecule.Exactly(molecule.Globule("bench", 10000, 99), 10000, 99)
	pts := mol.Positions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		octree.Build(pts, 8)
	}
}

func BenchmarkSurfaceBuild(b *testing.B) {
	mol := molecule.Exactly(molecule.Globule("bench", 5000, 99), 5000, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surface.Build(mol, surface.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBornRadiiOctree(b *testing.B) {
	sys := benchSystem(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.BornRadii()
	}
}

func BenchmarkBornRadiiNaive(b *testing.B) {
	sys := benchSystem(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.NaiveBornRadiiR6()
	}
}

func BenchmarkEpolOctree(b *testing.B) {
	sys := benchSystem(b, 3000)
	radii, _ := sys.BornRadii()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Epol(radii)
	}
}

func BenchmarkEpolNaive(b *testing.B) {
	sys := benchSystem(b, 3000)
	radii, _ := sys.BornRadii()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.NaiveEpol(radii)
	}
}

func BenchmarkRunCilk12(b *testing.B) {
	sys := benchSystem(b, 3000)
	pool := sched.New(12)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(gb.RunSpec{Pool: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMPI12(b *testing.B) {
	sys := benchSystem(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(gb.RunSpec{Processes: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunHybrid2x6(b *testing.B) {
	sys := benchSystem(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(gb.RunSpec{Processes: 2, ThreadsPerProcess: 6}); err != nil {
			b.Fatal(err)
		}
	}
}
