// Command dockscan runs a rigid docking scan: it scores ligand placements
// around a receptor by the change in GB polarization energy (the
// drug-design workload of §I/§IV-C) and prints the ranked poses.
//
// Usage:
//
//	dockscan -receptor rec.pqr -ligand lig.pqr
//	dockscan -synthetic -rec-atoms 4000 -lig-atoms 300 -poses 24
//	dockscan -receptor rec.pqr -ligand lig.pqr -refine 12 -threads 8
package main

import (
	"flag"
	"fmt"
	"os"

	"gbpolar/internal/dock"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

func main() {
	var (
		recPath   = flag.String("receptor", "", "receptor molecule file (.pqr/.xyzrq)")
		ligPath   = flag.String("ligand", "", "ligand molecule file (.pqr/.xyzrq)")
		synthetic = flag.Bool("synthetic", false, "use synthetic receptor/ligand instead of files")
		recAtoms  = flag.Int("rec-atoms", 3000, "synthetic receptor size")
		ligAtoms  = flag.Int("lig-atoms", 200, "synthetic ligand size")
		poses     = flag.Int("poses", 16, "coarse sphere poses")
		refine    = flag.Int("refine", 8, "refinement poses around the best coarse pose (0: off)")
		clearance = flag.Float64("clearance", 2.0, "surface clearance of the approach shell, Å")
		threads   = flag.Int("threads", 8, "scoring workers")
		topN      = flag.Int("top", 10, "poses to print")
		eps       = flag.Float64("eps", 0.9, "octree approximation parameter (both far-field criteria)")
		orderF    = flag.Int("order", 1, "far-field expansion order p: 0 monopole, 1 dipole, 2 quadrupole")
		fast      = flag.Bool("fast", false, "octree-reuse scoring (§IV-C: no per-pose rebuilds)")
	)
	flag.Parse()

	var receptor, ligand *molecule.Molecule
	var err error
	switch {
	case *synthetic:
		receptor = molecule.Exactly(molecule.Globule("receptor", *recAtoms, 7), *recAtoms, 7)
		ligand = molecule.Exactly(molecule.Globule("ligand", *ligAtoms, 11), *ligAtoms, 11)
	case *recPath != "" && *ligPath != "":
		if receptor, err = molecule.LoadFile(*recPath); err != nil {
			fatal(err)
		}
		if ligand, err = molecule.LoadFile(*ligPath); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -receptor and -ligand files, or -synthetic"))
	}

	params := gb.DefaultParams()
	params.Accuracy = gb.Accuracy{EpsBorn: *eps, EpsEpol: *eps, QuadOrder: 1, Order: *orderF}
	scorer, err := dock.NewScorer(receptor, ligand, params, surface.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("receptor %s: %d atoms, Epol %.1f kcal/mol\n",
		receptor.Name, receptor.NumAtoms(), scorer.ReceptorEnergy())
	fmt.Printf("ligand   %s: %d atoms, Epol %.1f kcal/mol\n\n",
		ligand.Name, ligand.NumAtoms(), scorer.LigandEnergy())

	pool := sched.New(*threads)
	defer pool.Close()

	scoreAll := scorer.ScoreAll
	if *fast {
		scoreAll = scorer.FastScoreAll
	}
	all := scorer.SpherePoses(*poses, *clearance)
	scores, err := scoreAll(pool, all)
	if err != nil {
		fatal(err)
	}
	if *refine > 0 && len(scores) > 0 && !scores[0].Clash {
		extra, err := scoreAll(pool, dock.Refine(scores[0].Pose, *refine, 1.5, 0.4))
		if err != nil {
			fatal(err)
		}
		scores = append(scores, extra...)
	}
	// Re-rank the union.
	best := scores
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && best[j].DeltaEpol < best[j-1].DeltaEpol; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	fmt.Printf("%-24s %12s\n", "pose", "ΔEpol")
	n := min(*topN, len(best))
	for _, s := range best[:n] {
		mark := ""
		if s.Clash {
			mark = "  (clash)"
		}
		fmt.Printf("%-24s %+12.2f%s\n", s.Pose.Label, s.DeltaEpol, mark)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dockscan:", err)
	os.Exit(1)
}
