// Command gblint runs the project's static-analysis suite (see
// internal/analysis) over the module containing the working directory.
//
// Usage:
//
//	gblint [-json] [-github] [./...]
//
// The path argument is accepted for familiarity but the whole module is
// always analyzed — the invariants (SPMD symmetry, determinism,
// panic-freedom, cancellation propagation, hot-loop allocation) are
// module-wide properties.
//
// Output modes:
//
//	(default)  one "file:line:col: analyzer: message" line per finding
//	-json      a deterministic JSON array of findings (sorted by file,
//	           line, column, analyzer — the order Analyze returns)
//	-github    GitHub Actions workflow commands (::error file=...) so
//	           findings surface as inline PR annotations; the plain
//	           lines are still printed for the job log
//
// Exit status: 0 when clean, 1 when findings are reported, 2 when the
// module fails to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gbpolar/internal/analysis"
)

// jsonFinding is the stable wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of plain lines")
	githubOut := flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "gblint: unsupported argument %q (the whole module is always analyzed)\n", arg)
			os.Exit(2)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gblint: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gblint: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.Analyze(loader.Fset, pkgs, analysis.All)

	switch {
	case *jsonOut:
		out := make([]jsonFinding, 0, len(findings)) // [] not null when clean
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "gblint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f.String())
			if *githubOut {
				fmt.Printf("::error file=%s,line=%d,col=%d,title=gblint/%s::%s\n",
					f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer,
					escapeWorkflowData(f.Message))
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gblint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// escapeWorkflowData escapes a workflow-command data value per the
// GitHub Actions command syntax (%, CR, LF).
func escapeWorkflowData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
