// Command gblint runs the project's static-analysis suite (see
// internal/analysis) over the module containing the working directory.
//
// Usage:
//
//	gblint [./...]
//
// The argument is accepted for familiarity but the whole module is
// always analyzed — the invariants (SPMD symmetry, determinism,
// panic-freedom) are module-wide properties.
//
// Exit status: 0 when clean, 1 when findings are reported, 2 when the
// module fails to load or type-check.
package main

import (
	"fmt"
	"os"

	"gbpolar/internal/analysis"
)

func main() {
	for _, arg := range os.Args[1:] {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "gblint: unsupported argument %q (the whole module is always analyzed)\n", arg)
			os.Exit(2)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gblint: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gblint: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.Analyze(loader.Fset, pkgs, analysis.All)
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gblint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
