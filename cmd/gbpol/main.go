// Command gbpol computes the GB polarization energy of a molecule with
// the octree-based r⁶ algorithms.
//
// Usage:
//
//	gbpol -in protein.pqr                       # serial octree run
//	gbpol -synthetic globule -atoms 20000       # synthetic workload
//	gbpol -in m.pqr -driver hybrid -P 2 -p 6    # hybrid layout
//	gbpol -in m.pqr -driver naive               # exact reference
//	gbpol -in m.pqr -eps-born 0.5 -eps-epol 0.3 # accuracy knobs
//	gbpol -in m.pqr -radii out.txt              # dump Born radii
//	gbpol -in m.pqr -driver mpi -metrics text   # deterministic counters
//	gbpol -in m.pqr -trace-out trace.json       # chrome://tracing spans
//	gbpol -in m.pqr -metrics-out metrics.json   # JSON metrics to a file
//	gbpol -in m.pqr -serve 127.0.0.1:8080       # live /metrics + pprof
//
// Distributed runs (-driver mpi or hybrid) can be supervised: phase
// checkpoints land in -checkpoint-dir, a killed run picks up from the
// last completed phase with -resume, and -deadline/-retries bound how
// long the supervisor fights a bad cluster before shedding accuracy:
//
//	gbpol -in m.pqr -driver mpi -P 4 -checkpoint-dir ckpt
//	gbpol -in m.pqr -driver mpi -P 4 -checkpoint-dir ckpt -resume
//	gbpol -in m.pqr -driver mpi -P 4 -deadline 30s -retries 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
	"gbpolar/internal/supervise"
	"gbpolar/internal/surface"
	"gbpolar/internal/tune"
)

func main() {
	var (
		in         = flag.String("in", "", "input molecule (.pqr or .xyzrq)")
		synth      = flag.String("synthetic", "", "synthetic workload: globule | shell | helix | cmv | btv")
		atoms      = flag.Int("atoms", 10000, "atom count for synthetic workloads")
		seed       = flag.Int64("seed", 1, "seed for synthetic workloads")
		driver     = flag.String("driver", "serial", "serial | cilk | mpi | hybrid | naive")
		bigP       = flag.Int("P", 2, "processes (mpi/hybrid)")
		smallP     = flag.Int("p", 6, "threads per process (cilk/hybrid)")
		epsBorn    = flag.Float64("eps-born", 0.9, "Born-radii approximation parameter")
		epsEpol    = flag.Float64("eps-epol", 0.9, "energy approximation parameter")
		epsBin     = flag.Float64("eps-bin", 0, "Born-class histogram bin width (0 = derived from -eps-epol)")
		orderF     = flag.Int("order", 1, "far-field expansion order p: 0 monopole, 1 dipole, 2 quadrupole")
		quadOrder  = flag.Int("quad-order", 1, "Dunavant surface-quadrature degree (1..8)")
		targetErr  = flag.Float64("target-error", 0, "auto-tune the accuracy point to this |Epol| error budget in kcal/mol (overrides the accuracy flags above)")
		approx     = flag.Bool("approx-math", false, "use fast inverse-sqrt/exp kernels")
		icoLevel   = flag.Int("surface-level", 0, "icosphere level for the surface sampler (default 1)")
		radiiOut   = flag.String("radii", "", "write Born radii to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON (chrome://tracing) to this file")
		metrics    = flag.String("metrics", "", "print run metrics to stdout: text (deterministic summary) | json")
		metricsOut = flag.String("metrics-out", "", "write the JSON metrics document to this file")
		serveF     = flag.String("serve", "", "serve /metrics, /healthz, and /debug/pprof on this address (e.g. 127.0.0.1:8080) during the run and until interrupted")
		ckptDir    = flag.String("checkpoint-dir", "", "write phase checkpoints to this directory and run supervised (mpi/hybrid)")
		resumeF    = flag.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir")
		deadlineF  = flag.Duration("deadline", 0, "supervised wall-time budget: on expiry the run sheds accuracy instead of overshooting (0 = none)")
		retriesF   = flag.Int("retries", 0, "supervised retry budget before escalating down the degradation ladder (0 = default 2)")
		verbose    = flag.Bool("v", false, "print run statistics")
	)
	flag.Parse()
	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		fatal(fmt.Errorf("unknown -metrics mode %q (want text or json)", *metrics))
	}
	supervised := *ckptDir != "" || *resumeF || *deadlineF > 0 || *retriesF > 0
	if *resumeF && *ckptDir == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir to resume from"))
	}
	if supervised {
		switch strings.ToLower(*driver) {
		case "mpi", "hybrid":
		default:
			fatal(fmt.Errorf("-checkpoint-dir/-resume/-deadline/-retries need -driver mpi or hybrid"))
		}
	}

	mol, err := loadMolecule(*in, *synth, *atoms, *seed)
	if err != nil {
		fatal(err)
	}
	var (
		surf   *surface.Surface
		sys    *gb.System
		sel    *tune.Selection
		ladder []supervise.RelaxStep
	)
	if *targetErr > 0 {
		// Auto-tune: search the accuracy space for the cheapest point that
		// meets the error budget; the point (and the shed ladder the
		// supervisor steps down) replaces the manual accuracy flags.
		params := gb.DefaultParams()
		if *approx {
			params.Math = gb.ApproxMath
		}
		sel, err = tune.Select(mol, *targetErr, tune.Options{
			Params:  params,
			Surface: surface.Config{IcoLevel: *icoLevel, ProbeRadius: 1.4},
		})
		if err != nil {
			fatal(err)
		}
		surf, sys = sel.Surface, sel.System
		for _, p := range sel.Ladder {
			ladder = append(ladder, supervise.RelaxStep{Accuracy: p.Acc, RelError: p.PredictedRelError})
		}
	} else {
		surf, err = surface.Build(mol, surface.Config{
			IcoLevel:    *icoLevel,
			RuleDegree:  *quadOrder,
			ProbeRadius: 1.4,
		})
		if err != nil {
			fatal(err)
		}
		params := gb.DefaultParams()
		params.Accuracy = gb.Accuracy{
			EpsBorn:   *epsBorn,
			EpsEpol:   *epsEpol,
			BinWidth:  *epsBin,
			QuadOrder: *quadOrder,
			Order:     *orderF,
		}
		if *approx {
			params.Math = gb.ApproxMath
		}
		sys, err = gb.NewSystem(mol, surf, params)
		if err != nil {
			fatal(err)
		}
	}

	var rec *obs.Recorder
	if *traceOut != "" || *metrics != "" || *metricsOut != "" || *serveF != "" {
		rec = obs.NewRecorder(perf.StartTimer().Elapsed)
		rec.SetLabel(fmt.Sprintf("gbpol %s %s", mol.Name, strings.ToLower(*driver)))
	}
	var srv *obs.Server
	if *serveF != "" {
		srv, err = obs.Serve(*serveF, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "gbpol: serving /metrics, /healthz, /debug/pprof on http://%s\n", srv.Addr())
	}

	var res *gb.Result
	var sup *supervise.Outcome
	switch strings.ToLower(*driver) {
	case "serial":
		res, err = sys.Run(gb.RunSpec{Obs: rec})
	case "cilk":
		pool := sched.New(*smallP)
		res, err = sys.Run(gb.RunSpec{Pool: pool, Obs: rec})
		pool.Close()
	case "mpi":
		if supervised {
			sup, err = runSupervised(sys, *bigP, 1, *ckptDir, *resumeF, *deadlineF, *retriesF, ladder, rec)
		} else {
			res, err = sys.Run(gb.RunSpec{Processes: *bigP, Obs: rec})
		}
	case "hybrid":
		if supervised {
			sup, err = runSupervised(sys, *bigP, *smallP, *ckptDir, *resumeF, *deadlineF, *retriesF, ladder, rec)
		} else {
			res, err = sys.Run(gb.RunSpec{Processes: *bigP, ThreadsPerProcess: *smallP, Obs: rec})
		}
	case "naive":
		radii, bornOps := sys.NaiveBornRadiiR6()
		e, epolOps := sys.NaiveEpol(radii)
		res = &gb.Result{Epol: e, Born: radii, Processes: 1, ThreadsPerProcess: 1,
			PerCoreOps: []int64{bornOps + epolOps}}
	default:
		fatal(fmt.Errorf("unknown driver %q", *driver))
	}
	if err != nil {
		fatal(err)
	}
	if sup != nil {
		res = sup.Result
		// The supervised output paths below export the winning attempt's
		// run recorder; the CLI-level recorder (already attached to -serve)
		// keeps the supervisor's own counters and escalation events.
		if rec != nil {
			rec = sup.Recorder
			rec.SetLabel(fmt.Sprintf("gbpol %s %s supervised", mol.Name, strings.ToLower(*driver)))
		}
	}
	fmt.Printf("molecule      %s (%d atoms, %d quadrature points)\n",
		mol.Name, mol.NumAtoms(), surf.NumPoints())
	fmt.Printf("driver        %s (P=%d, p=%d)\n", *driver, res.Processes, res.ThreadsPerProcess)
	fmt.Printf("Epol          %.4f kcal/mol\n", res.Epol)
	if sel != nil {
		a := sel.Point.Acc
		fmt.Printf("accuracy      tuned for ±%g kcal/mol: eps-born=%g eps-epol=%g bin=%g quad-order=%d order=%d (measured %.3g, %d verify runs)\n",
			*targetErr, a.EpsBorn, a.EpsEpol, a.BinWidth, a.QuadOrder, a.Order,
			sel.Point.MeasuredError, sel.VerifyRuns)
	}
	if sup != nil {
		fmt.Printf("supervision   rung=%s attempts=%d eps-factor=%.3g\n",
			sup.Rung, len(sup.Attempts), sup.EpsFactor)
		if sup.DeadlineExceeded {
			fmt.Printf("supervision   deadline exceeded — fell back to a best-effort run\n")
		}
		if sup.Degraded {
			fmt.Printf("supervision   degraded result, error bound ±%.4g kcal/mol\n", res.ErrorBound)
		}
	}
	if *verbose {
		fmt.Printf("interactions  %d\n", res.TotalOps())
		fmt.Printf("wall time     %v\n", res.Wall)
		if res.Steals > 0 {
			fmt.Printf("steals        %d\n", res.Steals)
		}
		// Sorted-kind rendering via the shared helper: map-order output
		// would drift between identical runs.
		for _, kind := range obs.SortedKeys(res.Traffic.Collectives) {
			st := res.Traffic.Collectives[kind]
			fmt.Printf("comm          %s: %d calls, %d bytes\n", kind, st.Calls, st.Bytes)
		}
	}
	switch *metrics {
	case "text":
		fmt.Print(rec.Summary())
	case "json":
		if err := rec.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, rec); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *radiiOut != "" {
		f, err := os.Create(*radiiOut)
		if err != nil {
			fatal(err)
		}
		for i, r := range res.Born {
			fmt.Fprintf(f, "%d %.6f\n", i, r)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if srv != nil {
		// Keep the endpoint up after the run so /debug/pprof and the final
		// /metrics remain scrapeable; Ctrl-C exits.
		fmt.Fprintf(os.Stderr, "gbpol: run complete, still serving on http://%s (interrupt to exit)\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// runSupervised routes a distributed run through the run supervisor:
// checkpoints go to dir (in memory when dir is empty), the deadline and
// retry budget bound the escalation ladder. Without -resume, a directory
// already holding checkpoints is refused rather than silently resumed
// from stale state.
func runSupervised(sys *gb.System, P, p int, dir string, resume bool, deadline time.Duration, retries int, ladder []supervise.RelaxStep, rec *obs.Recorder) (*supervise.Outcome, error) {
	var store supervise.Store
	if dir != "" {
		ds := &supervise.DirStore{Dir: dir}
		if ck, err := ds.Latest(); err != nil {
			return nil, err
		} else if ck != nil && !resume {
			return nil, fmt.Errorf("checkpoint dir %s already holds a %s checkpoint; pass -resume to continue it or clear the directory", dir, ck.Phase)
		} else if ck != nil {
			fmt.Fprintf(os.Stderr, "gbpol: resuming from %s checkpoint in %s\n", ck.Phase, dir)
		} else if resume {
			return nil, fmt.Errorf("-resume: no usable checkpoint in %s", dir)
		}
		store = ds
	}
	out, err := supervise.Run(sys, supervise.Spec{
		Processes:         P,
		ThreadsPerProcess: p,
		Deadline:          deadline,
		Retries:           retries,
		Store:             store,
		Obs:               rec,
		AccuracyLadder:    ladder,
	})
	if err == nil && dir != "" {
		// The run is done; keep only the newest snapshot per config so a
		// repeatedly-checkpointed directory doesn't grow without bound. A
		// prune failure costs disk, not the result.
		if removed, perr := store.(*supervise.DirStore).Prune(1); perr != nil {
			fmt.Fprintf(os.Stderr, "gbpol: checkpoint prune: %v\n", perr)
		} else if removed > 0 {
			fmt.Fprintf(os.Stderr, "gbpol: pruned %d checkpoint file(s) from %s\n", removed, dir)
		}
	}
	return out, err
}

func loadMolecule(in, synth string, atoms int, seed int64) (*molecule.Molecule, error) {
	switch {
	case in != "":
		return molecule.LoadFile(in)
	case synth != "":
		switch strings.ToLower(synth) {
		case "globule":
			return molecule.Exactly(molecule.Globule("globule", atoms, seed), atoms, seed), nil
		case "shell":
			return molecule.Exactly(molecule.Shell("shell", atoms, 30, seed), atoms, seed), nil
		case "helix":
			return molecule.Helix("helix", atoms, seed), nil
		case "cmv":
			return molecule.ScaledCMV(atoms), nil
		case "btv":
			return molecule.ScaledBTV(atoms), nil
		}
		return nil, fmt.Errorf("unknown synthetic workload %q", synth)
	}
	return nil, fmt.Errorf("one of -in or -synthetic is required")
}

// fatal prints err and exits. Malformed molecules (NaN coordinates,
// non-positive radii, duplicate atom serials) exit with status 2 so
// scripts can tell "your input is wrong" from a run failure's status 1.
func fatal(err error) {
	if errors.Is(err, molecule.ErrInvalidInput) {
		fmt.Fprintln(os.Stderr, "gbpol: input error:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "gbpol:", err)
	os.Exit(1)
}
