package main

import (
	"testing"
	"time"
)

// TestSoakShort runs the CI-sized soak in-process: two crash/drain
// cycles plus a healed final incarnation, seeded disk and network
// chaos, and every durability invariant checked. This is the same
// scenario `make soak-short` runs as a binary.
func TestSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("soak exceeds -short budgets")
	}
	rep := soak(options{
		seed:       1,
		rounds:     2,
		bitJobs:    3,
		chaosJobs:  2,
		atoms:      100,
		chaosAtoms: 90,
		procs:      3,
		diskEvents: 6,
		memBudget:  16 << 20,
		ckptDelay:  2 * time.Millisecond,
		wait:       90 * time.Second,
		strict:     true,
		logf:       t.Logf,
	})
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Acked == 0 {
		t.Fatal("soak admitted no jobs")
	}
	if rep.BitVerified == 0 {
		t.Error("no job was bit-verified against the clean oracle")
	}
	t.Logf("acked %d, resumed %d, bit-verified %d, shrunk %d, degraded %d, failed %d, lie losses %d",
		rep.Acked, rep.Resumed, rep.BitVerified, rep.Shrunk, rep.Degraded, rep.Failed, len(rep.LieLosses))
	t.Logf("disk stats: %+v", rep.DiskStats)
}
