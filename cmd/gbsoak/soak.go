package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"time"

	"gbpolar/internal/fault"
	faultfs "gbpolar/internal/fault/fs"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/serve"
	"gbpolar/internal/supervise"
	"gbpolar/internal/surface"
)

// The soak runs the serving daemon core in-process, generation after
// generation, over a seeded fault-injecting filesystem:
//
//	incarnation 0   fresh disk + disk-fault plan 0; submit jobs; kill
//	incarnation 1   crash-surviving state + plan 1; resume; drain
//	...             kill and drain alternate
//	incarnation N   healed disk; resume; run everything to completion
//
// Two job classes share each incarnation. "Bitwise" jobs see only disk
// faults and crashes — their non-degraded results must match the clean
// oracle bit for bit. "Chaos" jobs additionally get network fault plans
// (rank crash/drop/delay/straggle) on their first attempt — their
// results must be within the priced error bound. The memory gate is
// exercised by a deliberately oversized probe (413) and by the shared
// budget; a shrunk job is visible in its result and exempted from the
// bitwise check.

type jobClass int

const (
	classBitwise jobClass = iota
	classChaos
)

// options configures one soak run. Every run with the same options and
// seed draws the same fault plans.
type options struct {
	seed       int64
	rounds     int // crash/drain cycles before the final healed incarnation
	bitJobs    int // bitwise-checked jobs across all rounds
	chaosJobs  int // network-chaos jobs across all rounds
	atoms      int // bitwise-job molecule size
	chaosAtoms int // chaos-job molecule size
	procs      int // requested process layout
	diskEvents int // disk fault events per incarnation plan
	memBudget  int64
	ckptDelay  time.Duration // widens the mid-run kill window
	wait       time.Duration // final-incarnation completion deadline
	strict     bool          // require at least one bit-verified job
	logf       func(format string, args ...any)
}

// report is the soak's outcome: counters for the summary line, evidence
// for the failure bundle, and the violations that decide the exit code.
type report struct {
	Seed        int64             `json:"seed"`
	Acked       int               `json:"acked"`
	Rejected    map[string]int    `json:"rejected"`
	Resumed     int               `json:"resumed"`
	BitVerified int               `json:"bit_verified"`
	Shrunk      int               `json:"shrunk"`
	Degraded    int               `json:"degraded"`
	Failed      int               `json:"failed"`
	Invisible   int               `json:"invisible_restarts"`
	LieLosses   []string          `json:"lie_losses,omitempty"`
	DiskStats   faultfs.Stats     `json:"disk_stats"`
	Counters    map[string]int64  `json:"counters,omitempty"`
	Views       map[string]string `json:"views,omitempty"`
	Violations  []string          `json:"violations,omitempty"`
}

// do drives the daemon's HTTP handler without a socket.
func do(h http.Handler, method, path string, body []byte) (int, []byte) {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, strings.NewReader(string(body)))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

func molSpec(m *molecule.Molecule) serve.MoleculeSpec {
	spec := serve.MoleculeSpec{Name: m.Name, Atoms: make([]serve.AtomSpec, len(m.Atoms))}
	for i, a := range m.Atoms {
		spec.Atoms[i] = serve.AtomSpec{X: a.Pos.X, Y: a.Pos.Y, Z: a.Pos.Z,
			Radius: a.Radius, Charge: a.Charge}
	}
	return spec
}

// oracleRun computes the clean reference outcome on a fault-free,
// storage-free run at the soak's requested layout.
func oracleRun(m *molecule.Molecule, procs int) (*supervise.Outcome, error) {
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("building oracle surface: %w", err)
	}
	sys, err := gb.NewSystem(m, surf, gb.DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("building oracle system: %w", err)
	}
	return supervise.Run(sys, supervise.Spec{Processes: procs})
}

func bitsOf(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }

// split spreads n submissions across rounds so every incarnation admits
// fresh work alongside the jobs it resumed.
func split(n, rounds int) []int {
	out := make([]int, rounds)
	for i := 0; i < n; i++ {
		out[i%rounds]++
	}
	return out
}

// soak runs the full scenario and returns its report; the run failed
// iff the report carries violations.
func soak(o options) *report {
	logf := o.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &report{Seed: o.seed, Rejected: map[string]int{}, Views: map[string]string{}}
	violate := func(format string, args ...any) {
		v := fmt.Sprintf(format, args...)
		rep.Violations = append(rep.Violations, v)
		logf("VIOLATION: %s", v)
	}
	baseline := runtime.NumGoroutine()

	// The clean oracles. If even a fault-free run fails, soak results
	// would be meaningless — bail out as a violation.
	bitMol := molecule.Exactly(molecule.Globule("soak-bit", o.atoms, o.seed), o.atoms, o.seed)
	chaosMol := molecule.Exactly(molecule.Globule("soak-chaos", o.chaosAtoms, o.seed+1), o.chaosAtoms, o.seed+1)
	bitRef, err := oracleRun(bitMol, o.procs)
	if err != nil {
		violate("clean bitwise oracle failed: %v", err)
		return rep
	}
	chaosRef, err := oracleRun(chaosMol, o.procs)
	if err != nil {
		violate("clean chaos oracle failed: %v", err)
		return rep
	}
	wantBits := bitsOf(bitRef.Result.Epol)
	logf("oracle: bitwise Epol bits %s (%d atoms, P=%d), chaos Epol %.9g",
		wantBits, o.atoms, o.procs, chaosRef.Result.Epol)

	diskPlan := func(r int) *faultfs.Plan { return faultfs.Chaos(o.seed*7919+int64(r), o.diskEvents) }

	// Job classing is shared mutable state between the submitter and the
	// server's PlanFor hook (called from worker goroutines).
	var mu sync.Mutex
	class := map[string]jobClass{}
	var acked []string
	planFor := func(jobID string, attempt int) *fault.Plan {
		mu.Lock()
		c, ok := class[jobID]
		mu.Unlock()
		if !ok || c != classChaos || attempt > 1 {
			// Bitwise jobs and every retry attempt run fault-free: the
			// ladder's retry rung resumes the same configuration, keeping
			// completed chaos jobs inside their priced bounds.
			return nil
		}
		h := fnv.New64a()
		h.Write([]byte(jobID))
		return fault.Chaos(int64(h.Sum64()%100000)+o.seed, o.procs, 2)
	}

	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	ffs := faultfs.NewFaultFS(diskPlan(0))
	liedPaths := map[string]bool{}
	// harvestLies snapshots the fsync lies of the dying incarnation's
	// disk — a job lost to a lied-about job.json is the disk's fault, by
	// construction, and the loss invariant exempts exactly those.
	harvestLies := func() {
		for _, p := range ffs.Lied() {
			liedPaths[p] = true
		}
	}
	// addStats folds a dying incarnation's disk counters into the report
	// (Crash returns a fresh disk with zeroed counters).
	addStats := func() {
		s := ffs.Stats()
		d := &rep.DiskStats
		d.Writes += s.Writes
		d.Syncs += s.Syncs
		d.Reads += s.Reads
		d.Ops += s.Ops
		d.Enospc += s.Enospc
		d.ShortWrites += s.ShortWrites
		d.TornWrites += s.TornWrites
		d.SyncErrors += s.SyncErrors
		d.SyncLies += s.SyncLies
		d.CorruptReads += s.CorruptReads
		d.SlowOps += s.SlowOps
	}

	newServer := func() (*serve.Server, error) {
		return serve.New(serve.Config{
			DataDir:          "data",
			QueueDepth:       o.bitJobs + o.chaosJobs + 4,
			Workers:          2,
			DefaultProcesses: o.procs,
			MemBudgetBytes:   o.memBudget,
			FS:               ffs,
			PlanFor:          planFor,
			CheckpointDelay:  o.ckptDelay,
			Obs:              rec,
		})
	}

	submit := func(h http.Handler, m *molecule.Molecule, c jobClass, req serve.JobRequest) {
		req.Molecule = molSpec(m)
		body, err := json.Marshal(req)
		if err != nil {
			violate("encoding request: %v", err)
			return
		}
		code, data := do(h, http.MethodPost, "/v1/jobs", body)
		if code == http.StatusAccepted {
			var v serve.JobView
			if json.Unmarshal(data, &v) != nil || v.ID == "" {
				violate("202 without a job view: %s", data)
				return
			}
			mu.Lock()
			class[v.ID] = c
			acked = append(acked, v.ID)
			mu.Unlock()
			rep.Acked++
			return
		}
		var doc struct {
			Error serve.ErrorDoc `json:"error"`
		}
		if json.Unmarshal(data, &doc) != nil || doc.Error.Code == "" {
			violate("status %d without a typed error envelope: %s", code, data)
			return
		}
		rep.Rejected[doc.Error.Code]++
	}

	getView := func(h http.Handler, id string) (serve.JobView, int) {
		code, data := do(h, http.MethodGet, "/v1/jobs/"+id, nil)
		var v serve.JobView
		if code == http.StatusOK {
			if json.Unmarshal(data, &v) != nil {
				violate("job %s: 200 with undecodable view: %s", id, data)
			}
		}
		return v, code
	}

	bitPerRound := split(o.bitJobs, o.rounds)
	chaosPerRound := split(o.chaosJobs, o.rounds)
	queueCap := o.bitJobs + o.chaosJobs + 4

	for r := 0; r <= o.rounds; r++ {
		final := r == o.rounds
		if final {
			// The last incarnation runs on a healed disk: whatever the
			// chaos left durable must carry every acked job to the finish.
			harvestLies()
			addStats()
			ffs = ffs.Crash(nil)
		}
		srv, err := newServer()
		if err != nil {
			violate("incarnation %d: starting daemon: %v", r, err)
			return rep
		}
		h := srv.Handler()
		rep.Resumed += srv.ResumedJobs()
		logf("incarnation %d: resumed %d job(s), disk plan %q", r, srv.ResumedJobs(), ffs.Plan().String())

		// Durability invariant: every acked job must still be known.
		// Mid-chaos incarnations tolerate transient invisibility (a
		// corrupt-on-read during the startup scan); the healed final
		// incarnation tolerates only losses pinned on a lying fsync.
		mu.Lock()
		known := append([]string(nil), acked...)
		mu.Unlock()
		for _, id := range known {
			if _, code := getView(h, id); code != http.StatusOK {
				jobJSON := "data/" + id + "/job.json"
				switch {
				case liedPaths[jobJSON]:
					rep.LieLosses = append(rep.LieLosses, id)
					logf("incarnation %d: job %s lost to a lying fsync of %s (exempt)", r, id, jobJSON)
				case !final:
					rep.Invisible++
					logf("incarnation %d: job %s temporarily invisible (transient read fault)", r, id)
				default:
					violate("acked job %s lost: unknown to the healed final incarnation", id)
				}
			}
		}

		if !final {
			for i := 0; i < bitPerRound[r]; i++ {
				submit(h, bitMol, classBitwise, serve.JobRequest{Processes: o.procs, Seed: o.seed + int64(r*100+i)})
			}
			for i := 0; i < chaosPerRound[r]; i++ {
				submit(h, chaosMol, classChaos, serve.JobRequest{Processes: o.procs, Seed: o.seed + int64(r*100+50+i)})
			}
		}
		if r == 0 {
			// Memory-gate probe: a molecule whose modeled footprint
			// exceeds the whole budget at any layout must draw a typed
			// 413, never an admission.
			big := int(o.memBudget/perf.EstimateDataBytes(1, 60)) + 2
			for perf.EstimateDataBytes(big, 60*big) <= o.memBudget {
				big *= 2
			}
			if big > 20000 {
				logf("skipping 413 probe: budget too large for the default atom cap")
			} else {
				bigMol := molecule.Exactly(molecule.Globule("soak-413", big, o.seed+2), big, o.seed+2)
				body, err := json.Marshal(serve.JobRequest{Molecule: molSpec(bigMol)})
				if err != nil {
					violate("encoding 413 probe: %v", err)
				} else if code, data := do(h, http.MethodPost, "/v1/jobs", body); code != http.StatusRequestEntityTooLarge {
					violate("oversized probe (%d atoms): got status %d, want 413: %s", big, code, data)
				} else {
					rep.Rejected[serve.CodeTooLarge]++
				}
			}
		}
		srv.Start()

		if final {
			deadline := time.Now().Add(o.wait)
			for _, id := range known {
				if liedLoss(rep, id) {
					continue
				}
				for {
					v, code := getView(h, id)
					if code == http.StatusOK &&
						(v.State == serve.StateDone || v.State == serve.StateFailed) {
						recordTerminal(rep, violate, id, classOf(&mu, class, id), v, wantBits, bitRef, chaosRef)
						break
					}
					if qd := srv.QueueDepth(); qd > queueCap+rep.Resumed {
						violate("queue depth %d exceeds bound %d", qd, queueCap+rep.Resumed)
					}
					if time.Now().After(deadline) {
						violate("job %s never reached a terminal state (last: %q, http %d)", id, v.State, code)
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			srv.Drain()
			break
		}

		// Let the incarnation make real progress before it dies: wait
		// for one of this round's jobs to finish, bounded so a stuck
		// incarnation cannot stall the soak.
		progress := time.Now().Add(o.wait / 4)
		for time.Now().Before(progress) {
			doneNow := 0
			mu.Lock()
			ids := append([]string(nil), acked...)
			mu.Unlock()
			for _, id := range ids {
				if v, code := getView(h, id); code == http.StatusOK &&
					(v.State == serve.StateDone || v.State == serve.StateFailed) {
					doneNow++
				}
			}
			if doneNow > r {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}

		if r%2 == 0 {
			// Kill: snapshot the durable state first — everything the
			// dying incarnation writes afterwards lands on a discarded
			// disk, exactly like a power cut mid-write.
			harvestLies()
			next := ffs.Crash(diskPlan(r + 1))
			srv.Drain()
			addStats()
			ffs = next
			logf("incarnation %d: killed (crash snapshot taken mid-run)", r)
		} else {
			// Drain, then lose power anyway: a graceful shutdown's
			// durable state must survive the same crash.
			srv.Drain()
			harvestLies()
			addStats()
			ffs = ffs.Crash(diskPlan(r + 1))
			logf("incarnation %d: drained, then power lost", r)
		}
	}

	if o.strict && rep.BitVerified == 0 && len(rep.Violations) == 0 {
		violate("no job completed cleanly enough to bit-verify against the oracle (%d acked)", rep.Acked)
	}

	// Goroutine settle: every incarnation was drained; nothing may leak.
	settle := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(settle) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			violate("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	addStats()
	rep.Counters = rec.Counters()
	return rep
}

func liedLoss(rep *report, id string) bool {
	for _, l := range rep.LieLosses {
		if l == id {
			return true
		}
	}
	return false
}

func classOf(mu *sync.Mutex, class map[string]jobClass, id string) jobClass {
	mu.Lock()
	defer mu.Unlock()
	return class[id]
}

// recordTerminal applies the terminal-state invariants to one job.
func recordTerminal(rep *report, violate func(string, ...any), id string, c jobClass,
	v serve.JobView, wantBits string, bitRef, chaosRef *supervise.Outcome) {
	rep.Views[id] = v.State
	switch v.State {
	case serve.StateDone:
		res := v.Result
		if res == nil {
			violate("job %s done without a result", id)
			return
		}
		ref := bitRef
		if c == classChaos {
			ref = chaosRef
		}
		if c == classBitwise && !res.Degraded && res.ShrunkProcesses == 0 {
			// The heart of the soak: a job that saw only disk faults and
			// crash/resume cycles must land on the oracle bit for bit.
			if res.EpolBits != wantBits {
				violate("job %s: Epol bits %s differ from clean oracle %s", id, res.EpolBits, wantBits)
				return
			}
			rep.BitVerified++
			return
		}
		if res.ShrunkProcesses > 0 {
			rep.Shrunk++
		}
		diff := math.Abs(res.Epol - ref.Result.Epol)
		if res.Degraded {
			rep.Degraded++
			if res.ErrorBound > 0 {
				if diff > res.ErrorBound {
					violate("job %s: degraded |Δ|=%g outside its bound %g", id, diff, res.ErrorBound)
				}
			} else if diff > 1e-9*math.Abs(ref.Result.Epol) {
				violate("job %s: zero-bound degraded Epol off by %g", id, diff)
			}
			return
		}
		if diff > 1e-9*math.Abs(ref.Result.Epol) {
			violate("job %s: non-degraded Epol %v vs reference %v (|Δ|=%g)", id, res.Epol, ref.Result.Epol, diff)
		}
	case serve.StateFailed:
		rep.Failed++
		if v.Error == nil || v.Error.Code == "" {
			violate("job %s failed without a typed error", id)
		}
	default:
		violate("job %s in non-terminal state %q at soak end", id, v.State)
	}
}
