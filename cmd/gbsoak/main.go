// Command gbsoak is the storage/resource fault-domain soak harness: it
// runs the gbd daemon core in-process, generation after generation, on a
// seeded fault-injecting filesystem — ENOSPC, short and torn writes,
// fsync errors and fsync lies, corrupt reads, slow I/O — combined with
// network fault plans (rank crash/drop/delay/straggle), mid-run kills,
// graceful drains, and power loss after drain. It then asserts the
// daemon's durability story end to end:
//
//   - no 202-acknowledged job is ever lost across crash+restart (losses
//     provably caused by a lying fsync are reported and exempted);
//   - jobs that saw only disk faults and crashes finish with Epol bits
//     identical to a clean oracle run;
//   - jobs that also saw network chaos finish within their priced error
//     bound or as a typed error;
//   - the admission queue stays bounded, the memory gate answers typed
//     413/429s, and no goroutine outlives the last drain.
//
// Everything is derived from -seed: the same seed replays the same disk
// and network plans. A red run writes its full report into -bundle for
// CI artifact upload.
//
// Usage:
//
//	gbsoak                       # default plan (~ a few minutes)
//	gbsoak -short                # CI-sized plan (< 90s)
//	gbsoak -seed 7 -v            # replay a specific universe, verbosely
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "chaos seed: disk plans, network plans, and molecules all derive from it")
		short      = flag.Bool("short", false, "CI-sized plan: fewer jobs, fewer rounds, smaller molecules")
		rounds     = flag.Int("rounds", 0, "crash/drain cycles before the healed final incarnation (0: 4, or 2 with -short)")
		jobs       = flag.Int("jobs", 0, "bitwise-checked jobs (0: 6, or 3 with -short)")
		chaosJobs  = flag.Int("chaos-jobs", 0, "network-chaos jobs (0: 4, or 2 with -short)")
		atoms      = flag.Int("atoms", 0, "bitwise-job molecule size (0: 150, or 100 with -short)")
		chaosAtoms = flag.Int("chaos-atoms", 0, "chaos-job molecule size (0: 120, or 90 with -short)")
		procs      = flag.Int("P", 3, "requested processes per job")
		diskEvents = flag.Int("disk-events", 6, "disk fault events per incarnation")
		memBudget  = flag.Int64("mem-budget", 16<<20, "daemon memory budget in bytes (sizes the 413/429 probes)")
		ckptDelay  = flag.Duration("checkpoint-delay", 2*time.Millisecond, "per-checkpoint slowdown widening the mid-run kill window")
		wait       = flag.Duration("wait", 2*time.Minute, "final-incarnation completion deadline")
		bundle     = flag.String("bundle", "", "directory to write the failure bundle into when the soak is red")
		strict     = flag.Bool("strict", true, "require at least one bit-verified job (a soak that proves nothing is red)")
		verbose    = flag.Bool("v", false, "log every incarnation and invariant event")
	)
	flag.Parse()

	pick := func(f *int, long, shortVal int) {
		if *f == 0 {
			if *short {
				*f = shortVal
			} else {
				*f = long
			}
		}
	}
	pick(rounds, 4, 2)
	pick(jobs, 6, 3)
	pick(chaosJobs, 4, 2)
	pick(atoms, 150, 100)
	pick(chaosAtoms, 120, 90)

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gbsoak: "+format+"\n", args...)
	}
	quiet := logf
	if !*verbose {
		quiet = nil
	}

	start := time.Now()
	rep := soak(options{
		seed:       *seed,
		rounds:     *rounds,
		bitJobs:    *jobs,
		chaosJobs:  *chaosJobs,
		atoms:      *atoms,
		chaosAtoms: *chaosAtoms,
		procs:      *procs,
		diskEvents: *diskEvents,
		memBudget:  *memBudget,
		ckptDelay:  *ckptDelay,
		wait:       *wait,
		strict:     *strict,
		logf:       quiet,
	})

	logf("seed %d: %d acked, %d resumed-from-disk, %d bit-verified, %d shrunk, %d degraded, %d failed, %d fsync-lie losses in %v",
		rep.Seed, rep.Acked, rep.Resumed, rep.BitVerified, rep.Shrunk, rep.Degraded, rep.Failed,
		len(rep.LieLosses), time.Since(start).Round(time.Millisecond))
	if len(rep.Rejected) > 0 {
		rej, err := json.Marshal(rep.Rejected)
		if err == nil {
			logf("typed rejections: %s", rej)
		}
	}
	logf("disk: %d writes / %d syncs / %d reads; injected %d enospc, %d short, %d torn, %d syncerr, %d synclie, %d corrupt, %d slow",
		rep.DiskStats.Writes, rep.DiskStats.Syncs, rep.DiskStats.Reads,
		rep.DiskStats.Enospc, rep.DiskStats.ShortWrites, rep.DiskStats.TornWrites,
		rep.DiskStats.SyncErrors, rep.DiskStats.SyncLies, rep.DiskStats.CorruptReads, rep.DiskStats.SlowOps)

	if len(rep.Violations) == 0 {
		logf("PASS: all durability invariants held")
		return
	}
	for _, v := range rep.Violations {
		logf("FAIL: %s", v)
	}
	if *bundle != "" {
		if err := writeBundle(*bundle, rep); err != nil {
			logf("writing failure bundle: %v", err)
		} else {
			logf("failure bundle written to %s (replay with -seed %d)", *bundle, rep.Seed)
		}
	}
	os.Exit(1)
}

// writeBundle dumps the full report (violations, per-job terminal
// states, disk stats, daemon counters) for CI artifact upload. The
// bundle goes to the real disk — the soak's own FaultFS died with the
// run.
func writeBundle(dir string, rep *report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "report.json"), append(data, '\n'), 0o644)
}
