// Command clustersim explores cluster layouts for one workload: it runs
// the hybrid algorithm at a series of (processes × threads) layouts and
// prints the modeled time breakdown on the Table I machine — the tool for
// answering "how should I lay this molecule out on my cluster?".
//
// Usage:
//
//	clustersim -atoms 100000                  # sweep layouts on a globule
//	clustersim -atoms 50000 -shape shell      # capsid-like workload
//	clustersim -nodes 1,2,4,8 -rpn 12,2       # custom node counts / ranks-per-node
//	clustersim -faults chaos:6                # seeded chaos schedule per layout
//	clustersim -faults 'crash:1@4,slow:2@0+8~100us' -policy degrade
//	clustersim -faults chaos:6 -retries 3     # supervised: retry/resume per layout
//	clustersim -checkpoint-dir ckpt           # phase checkpoints per layout
//	clustersim -checkpoint-dir ckpt -resume   # pick interrupted layouts back up
//	clustersim -faults chaos:8 -deadline 30s  # shed accuracy rather than overshoot
//	clustersim -trace-out trace.json          # chrome://tracing span timeline
//	clustersim -metrics text                  # deterministic per-layout counters
//	clustersim -metrics-out metrics.json      # JSON metrics documents to a file
//	clustersim -serve 127.0.0.1:8080          # live /metrics + pprof during the sweep
//
// Fault-injected sweeps (-faults) dump each recovering layout's flight
// recorder — the last spans, collectives, and fault hits per rank — to
// stderr, so a degraded row in the table comes with its post-mortem.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"gbpolar/internal/bench"
	"gbpolar/internal/fault"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/supervise"
	"gbpolar/internal/surface"
)

func main() {
	var (
		atoms      = flag.Int("atoms", 50000, "workload size")
		shapeF     = flag.String("shape", "globule", "globule | shell")
		nodesF     = flag.String("nodes", "1,2,4,8,16,32", "comma-separated node counts")
		rpnF       = flag.String("rpn", "12,2", "ranks per node to compare (threads fill the node)")
		seed       = flag.Int64("seed", 7, "workload seed (also seeds chaos fault schedules)")
		faultsF    = flag.String("faults", "", "fault plan: 'chaos:N' for N seeded random events per layout, or an explicit schedule like 'crash:1@4,drop:0>2@3+2,slow:1@0+8~100us' (empty: no injection)")
		policyF    = flag.String("policy", "recover", "fault policy: recover (re-assign lost work) | degrade (partial Epol + error bound)")
		traceOut   = flag.String("trace-out", "", "write the sweep's spans as one Chrome trace-event JSON (chrome://tracing; one process row per layout) to this file")
		metrics    = flag.String("metrics", "", "print per-layout metrics to stdout after the table: text (deterministic summaries) | json (one document per layout)")
		metricsOut = flag.String("metrics-out", "", "write the per-layout JSON metrics documents (concatenated) to this file")
		serveF     = flag.String("serve", "", "serve /metrics, /healthz, and /debug/pprof on this address during the sweep and until interrupted")
		ckptDir    = flag.String("checkpoint-dir", "", "write per-layout phase checkpoints under this directory and run each layout supervised")
		resumeF    = flag.Bool("resume", false, "resume layouts from their checkpoints in -checkpoint-dir")
		deadlineF  = flag.Duration("deadline", 0, "per-layout supervised deadline: on expiry a layout sheds accuracy instead of overshooting (0 = none)")
		retriesF   = flag.Int("retries", 0, "per-layout supervised retry budget (0 = default 2)")
		epsF       = flag.Float64("eps", 0.9, "octree approximation parameter (both far-field criteria)")
		orderF     = flag.Int("order", 1, "far-field expansion order p: 0 monopole, 1 dipole, 2 quadrupole")
	)
	flag.Parse()
	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		fatal(fmt.Errorf("unknown -metrics mode %q (want text or json)", *metrics))
	}
	supervised := *ckptDir != "" || *resumeF || *deadlineF > 0 || *retriesF > 0
	if *resumeF && *ckptDir == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir to resume from"))
	}

	var policy gb.FaultPolicy
	switch *policyF {
	case "recover":
		policy = gb.Recover
	case "degrade":
		policy = gb.Degrade
	default:
		fatal(fmt.Errorf("unknown policy %q (want recover or degrade)", *policyF))
	}
	chaosN := 0
	var basePlan *fault.Plan
	if *faultsF != "" {
		if n, ok := strings.CutPrefix(*faultsF, "chaos:"); ok {
			v, err := strconv.Atoi(n)
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad chaos event count %q", n))
			}
			chaosN = v
		} else {
			p, err := fault.Parse(*faultsF)
			if err != nil {
				fatal(err)
			}
			basePlan = p
		}
	}
	injecting := chaosN > 0 || basePlan != nil

	var mol *molecule.Molecule
	switch *shapeF {
	case "globule":
		mol = molecule.Exactly(molecule.Globule("workload", *atoms, *seed), *atoms, *seed)
	case "shell":
		mol = molecule.Exactly(molecule.Shell("workload", *atoms, 30, *seed), *atoms, *seed)
	default:
		fatal(fmt.Errorf("unknown shape %q", *shapeF))
	}
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	params := gb.DefaultParams()
	params.Accuracy = gb.Accuracy{EpsBorn: *epsF, EpsEpol: *epsF, QuadOrder: 1, Order: *orderF}
	sys, err := gb.NewSystem(mol, surf, params)
	if err != nil {
		fatal(err)
	}

	machine := perf.Lonestar4()
	cal := perf.DefaultCalibration()
	nodes, err := parseInts(*nodesF)
	if err != nil {
		fatal(err)
	}
	rpns, err := parseInts(*rpnF)
	if err != nil {
		fatal(err)
	}

	tab := &bench.Table{
		ID:     "clustersim",
		Title:  fmt.Sprintf("Layout sweep for %s (%d atoms, %d q-points)", mol.Name, sys.NumAtoms(), sys.NumQPoints()),
		Header: []string{"Nodes", "Ranks/node", "Threads/rank", "Cores", "Comp", "Comm", "Total", "Mem/node GB"},
	}
	if injecting || supervised {
		tab.Header = append(tab.Header, "Fault", "Outcome")
	}
	observing := *traceOut != "" || *metrics != "" || *metricsOut != "" || *serveF != ""
	var recs []*obs.Recorder
	var srv *obs.Server
	if *serveF != "" {
		srv, err = obs.Serve(*serveF)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "clustersim: serving /metrics, /healthz, /debug/pprof on http://%s\n", srv.Addr())
	}
	for _, n := range nodes {
		for _, rpn := range rpns {
			if machine.CoresPerNode%rpn != 0 {
				continue
			}
			threads := machine.CoresPerNode / rpn
			P := n * rpn
			var cfg *gb.FaultConfig
			if injecting {
				plan := basePlan
				if chaosN > 0 {
					plan = fault.Chaos(*seed, P, chaosN)
				}
				cfg = &gb.FaultConfig{Plan: plan, Policy: policy}
			}
			// One recorder per layout: in the Chrome trace each layout
			// renders as its own process row with per-rank thread timelines.
			var rec *obs.Recorder
			if observing || injecting {
				rec = obs.NewRecorder(perf.StartTimer().Elapsed)
				rec.SetLabel(fmt.Sprintf("P=%d p=%d", P, threads))
				if srv != nil {
					srv.Attach(rec)
				}
			}
			var res *gb.Result
			var supOut *supervise.Outcome
			if supervised {
				var store supervise.Store
				if *ckptDir != "" {
					store, err = layoutStore(*ckptDir, P, threads, *resumeF)
					if err != nil {
						fatal(err)
					}
				}
				var planFn func(int) *fault.Plan
				if cfg != nil {
					plan := cfg.Plan
					planFn = func(int) *fault.Plan { return plan }
				}
				supOut, err = supervise.Run(sys, supervise.Spec{
					Processes:         P,
					ThreadsPerProcess: threads,
					Policy:            policy,
					Plan:              planFn,
					Deadline:          *deadlineF,
					Retries:           *retriesF,
					Store:             store,
					Obs:               rec,
				})
				if err != nil {
					fatal(err)
				}
				res = supOut.Result
				if ds, ok := store.(*supervise.DirStore); ok {
					// Layout done: retain only the newest snapshot so sweeping
					// many layouts doesn't accumulate every phase's file.
					if _, perr := ds.Prune(1); perr != nil {
						fmt.Fprintf(os.Stderr, "clustersim: checkpoint prune: %v\n", perr)
					}
				}
				if observing {
					// The layout recorder keeps the supervisor's counters and
					// escalation events; the winning attempt's run recorder
					// carries the run itself. Export both.
					supOut.Recorder.SetLabel(fmt.Sprintf("P=%d p=%d run", P, threads))
					recs = append(recs, rec, supOut.Recorder)
				}
			} else {
				if observing {
					recs = append(recs, rec)
				}
				spec := gb.RunSpec{
					Processes:         P,
					ThreadsPerProcess: threads,
					Faults:            cfg,
					Obs:               rec,
				}
				if injecting {
					// Post-mortem context for any layout that had to heal or
					// degrade: its flight recorder lands on stderr next to the
					// table row.
					spec.Flight = os.Stderr
				}
				res, err = sys.Run(spec)
				if err != nil {
					fatal(err)
				}
			}
			row := []string{strconv.Itoa(n), strconv.Itoa(rpn), strconv.Itoa(threads),
				strconv.Itoa(P * threads)}
			if len(res.PerCoreOps) > 0 {
				shape := perf.RunShape{Processes: res.Processes, ThreadsPerProcess: res.ThreadsPerProcess, DataBytes: sys.DataBytes()}
				b, err := machine.Price(cal, shape, res.PerCoreOps, res.Traffic)
				if err != nil {
					fatal(err)
				}
				b.Record(rec)
				row = append(row,
					fmt.Sprintf("%.4gs", b.CompSeconds), fmt.Sprintf("%.4gs", b.CommSeconds),
					fmt.Sprintf("%.4gs", b.TotalSeconds),
					fmt.Sprintf("%.2f", float64(b.MemPerNodeBytes)/float64(1<<30)))
				if injecting || supervised {
					row = append(row, fmt.Sprintf("%.4gs", b.FaultSeconds), outcomeCell(res, supOut))
				}
			} else {
				// The layout resumed from an already-complete checkpoint:
				// no work ran, so there is nothing to price.
				row = append(row, "-", "-", "-", "-")
				if injecting || supervised {
					row = append(row, "-", outcomeCell(res, supOut))
				}
			}
			tab.AddRow(row...)
		}
	}
	if err := tab.Print(os.Stdout); err != nil {
		fatal(err)
	}
	switch *metrics {
	case "text":
		for _, rec := range recs {
			fmt.Print(rec.Summary())
		}
	case "json":
		for _, rec := range recs {
			if err := rec.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		for _, rec := range recs {
			if err := rec.WriteJSON(f); err != nil {
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, recs...); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if srv != nil {
		fmt.Fprintf(os.Stderr, "clustersim: sweep complete, still serving on http://%s (interrupt to exit)\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// layoutStore returns the layout's on-disk checkpoint store under dir.
// Without -resume a subdirectory already holding checkpoints is refused
// rather than silently resumed from stale state.
func layoutStore(dir string, P, threads int, resume bool) (supervise.Store, error) {
	ds := &supervise.DirStore{Dir: filepath.Join(dir, fmt.Sprintf("P%dp%d", P, threads))}
	ck, err := ds.Latest()
	if err != nil {
		return nil, err
	}
	if ck != nil && !resume {
		return nil, fmt.Errorf("checkpoint dir %s already holds a %s checkpoint; pass -resume to continue it or clear the directory", ds.Dir, ck.Phase)
	}
	if ck != nil {
		fmt.Fprintf(os.Stderr, "clustersim: resuming P=%d p=%d from its %s checkpoint\n", P, threads, ck.Phase)
	}
	return ds, nil
}

// outcomeCell renders the table's Outcome column: the supervised ladder
// verdict when the layout ran under the supervisor, the in-run recovery
// status otherwise.
func outcomeCell(r *gb.Result, sup *supervise.Outcome) string {
	if sup == nil {
		return outcome(r)
	}
	s := sup.Rung.String()
	if len(sup.Attempts) > 1 {
		s += fmt.Sprintf(" (%d attempts)", len(sup.Attempts))
	}
	if sup.DeadlineExceeded {
		s += " deadline"
	}
	if sup.Degraded {
		s += fmt.Sprintf(" degraded ±%.3g", r.ErrorBound)
	}
	return s
}

// outcome summarizes a fault-injected run's recovery status for the table.
func outcome(r *gb.Result) string {
	switch {
	case r.Degraded:
		return fmt.Sprintf("degraded ±%.3g (lost %v)", r.ErrorBound, r.LostRanks)
	case len(r.LostRanks) > 0:
		return fmt.Sprintf("recovered (lost %v)", r.LostRanks)
	case r.Recovered:
		return "healed"
	default:
		return "clean"
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
