// Command clustersim explores cluster layouts for one workload: it runs
// the hybrid algorithm at a series of (processes × threads) layouts and
// prints the modeled time breakdown on the Table I machine — the tool for
// answering "how should I lay this molecule out on my cluster?".
//
// Usage:
//
//	clustersim -atoms 100000                  # sweep layouts on a globule
//	clustersim -atoms 50000 -shape shell      # capsid-like workload
//	clustersim -nodes 1,2,4,8 -rpn 12,2       # custom node counts / ranks-per-node
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gbpolar/internal/bench"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/perf"
	"gbpolar/internal/surface"
)

func main() {
	var (
		atoms   = flag.Int("atoms", 50000, "workload size")
		shapeF  = flag.String("shape", "globule", "globule | shell")
		nodesF  = flag.String("nodes", "1,2,4,8,16,32", "comma-separated node counts")
		rpnF    = flag.String("rpn", "12,2", "ranks per node to compare (threads fill the node)")
		seed    = flag.Int64("seed", 7, "workload seed")
	)
	flag.Parse()

	var mol *molecule.Molecule
	switch *shapeF {
	case "globule":
		mol = molecule.Exactly(molecule.Globule("workload", *atoms, *seed), *atoms, *seed)
	case "shell":
		mol = molecule.Exactly(molecule.Shell("workload", *atoms, 30, *seed), *atoms, *seed)
	default:
		fatal(fmt.Errorf("unknown shape %q", *shapeF))
	}
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		fatal(err)
	}

	machine := perf.Lonestar4()
	cal := perf.DefaultCalibration()
	nodes, err := parseInts(*nodesF)
	if err != nil {
		fatal(err)
	}
	rpns, err := parseInts(*rpnF)
	if err != nil {
		fatal(err)
	}

	tab := &bench.Table{
		ID:    "clustersim",
		Title: fmt.Sprintf("Layout sweep for %s (%d atoms, %d q-points)", mol.Name, sys.NumAtoms(), sys.NumQPoints()),
		Header: []string{"Nodes", "Ranks/node", "Threads/rank", "Cores", "Comp", "Comm", "Total", "Mem/node GB"},
	}
	for _, n := range nodes {
		for _, rpn := range rpns {
			if machine.CoresPerNode%rpn != 0 {
				continue
			}
			threads := machine.CoresPerNode / rpn
			P := n * rpn
			var res *gb.Result
			if threads == 1 {
				res, err = sys.RunMPI(P)
			} else {
				res, err = sys.RunHybrid(P, threads)
			}
			if err != nil {
				fatal(err)
			}
			shape := perf.RunShape{Processes: P, ThreadsPerProcess: threads, DataBytes: sys.DataBytes()}
			b, err := machine.Price(cal, shape, res.PerCoreOps, res.Traffic)
			if err != nil {
				fatal(err)
			}
			tab.AddRow(strconv.Itoa(n), strconv.Itoa(rpn), strconv.Itoa(threads),
				strconv.Itoa(P*threads),
				fmt.Sprintf("%.4gs", b.CompSeconds), fmt.Sprintf("%.4gs", b.CommSeconds),
				fmt.Sprintf("%.4gs", b.TotalSeconds),
				fmt.Sprintf("%.2f", float64(b.MemPerNodeBytes)/float64(1<<30)))
		}
	}
	if err := tab.Print(os.Stdout); err != nil {
		fatal(err)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
