// Command gbsurf inspects and exports molecular surfaces: quadrature
// statistics, per-atom SASA tables, and point clouds (XYZ / PLY) for
// molecular viewers.
//
// Usage:
//
//	gbsurf -in mol.pqr                      # statistics
//	gbsurf -in mol.pqr -ply surface.ply     # export with normals+weights
//	gbsurf -synthetic globule -atoms 5000 -sasa sasa.txt
//	gbsurf -in mol.pqr -level 2 -probe 1.4  # denser sampling
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/stats"
	"gbpolar/internal/surface"
)

func main() {
	var (
		in      = flag.String("in", "", "input molecule (.pqr or .xyzrq)")
		synth   = flag.String("synthetic", "", "synthetic workload: globule | shell | helix")
		atoms   = flag.Int("atoms", 5000, "atom count for synthetic workloads")
		seed    = flag.Int64("seed", 1, "seed for synthetic workloads")
		level   = flag.Int("level", 1, "icosphere subdivision level")
		degree  = flag.Int("degree", 1, "Dunavant rule degree per triangle")
		probe   = flag.Float64("probe", 1.4, "solvent probe radius for accessibility culling, Å")
		xyzOut  = flag.String("xyz", "", "write the point cloud as XYZ")
		plyOut  = flag.String("ply", "", "write the point cloud as PLY (with normals and weights)")
		sasaOut = flag.String("sasa", "", "write the per-atom SASA table")
		threads = flag.Int("threads", 4, "surface-build workers")
	)
	flag.Parse()

	var mol *molecule.Molecule
	var err error
	switch {
	case *in != "":
		mol, err = molecule.LoadFile(*in)
	case *synth != "":
		switch strings.ToLower(*synth) {
		case "globule":
			mol = molecule.Exactly(molecule.Globule("globule", *atoms, *seed), *atoms, *seed)
		case "shell":
			mol = molecule.Exactly(molecule.Shell("shell", *atoms, 30, *seed), *atoms, *seed)
		case "helix":
			mol = molecule.Helix("helix", *atoms, *seed)
		default:
			err = fmt.Errorf("unknown synthetic workload %q", *synth)
		}
	default:
		err = fmt.Errorf("one of -in or -synthetic is required")
	}
	if err != nil {
		fatal(err)
	}

	pool := sched.New(*threads)
	defer pool.Close()
	surf, err := surface.BuildParallel(mol, surface.Config{
		IcoLevel: *level, RuleDegree: *degree, ProbeRadius: *probe,
	}, pool)
	if err != nil {
		fatal(err)
	}

	areas := surf.PerAtomArea(mol.NumAtoms())
	var areaStats stats.Stream
	exposed := 0
	for _, a := range areas {
		if a > 0 {
			exposed++
			areaStats.Add(a)
		}
	}
	fmt.Printf("molecule        %s\n", mol.Name)
	fmt.Printf("atoms           %d (%d exposed, %.1f%%)\n",
		mol.NumAtoms(), exposed, 100*float64(exposed)/float64(mol.NumAtoms()))
	fmt.Printf("quadrature pts  %d (%.2f per atom)\n",
		surf.NumPoints(), float64(surf.NumPoints())/float64(mol.NumAtoms()))
	fmt.Printf("total SASA      %.1f Å²\n", surf.Area)
	fmt.Printf("exposed-atom Å² %s\n", areaStats.String())
	fmt.Printf("nonpolar ΔG     %.2f kcal/mol (γ = %.4f)\n",
		gb.DefaultSurfaceTension*surf.Area, gb.DefaultSurfaceTension)

	if *xyzOut != "" {
		if err := withFile(*xyzOut, surf.WriteXYZ); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *xyzOut)
	}
	if *plyOut != "" {
		if err := withFile(*plyOut, surf.WritePLY); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *plyOut)
	}
	if *sasaOut != "" {
		err := withFile(*sasaOut, func(f io.Writer) error {
			type entry struct {
				idx  int
				area float64
			}
			order := make([]entry, 0, len(areas))
			for i, a := range areas {
				order = append(order, entry{i, a})
			}
			sort.Slice(order, func(i, j int) bool { return order[i].area > order[j].area })
			for _, e := range order {
				if _, err := fmt.Fprintf(f, "%d %.4f\n", e.idx, e.area); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *sasaOut)
	}
}

// withFile opens path for writing, runs fn, and closes it.
func withFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gbsurf:", err)
	os.Exit(1)
}
