// Command gbtrace analyzes trace exports of the gbpolar instrumented
// runs: it ingests Chrome trace-event JSON (gbpol/clustersim -trace-out,
// gbd's persisted per-attempt job traces) or obs.WriteJSON documents,
// merges the per-rank span forests, stitches collective rounds into
// happens-before edges, and prints the cross-rank critical path — where
// the wall time actually went, split into {phase × rank × compute/comm/
// idle} — plus the top-k slowest spans.
//
// Usage:
//
//	gbtrace trace.json                 # timing report per run
//	gbtrace -k 10 trace.json           # widen the slowest-span list
//	gbtrace -det trace.json            # deterministic structure view
//	                                   # (byte-identical across same-seed runs)
//	gbtrace -json trace.json           # one critpath.Report JSON doc per run
//	gbtrace <job-dir>/trace            # every attempt-*.json in a directory
//	gbtrace -out report.json -json t.json
//
// A directory argument analyzes every *.json inside it in name order —
// pointing gbtrace at a gbd job's trace/ directory walks the attempts in
// escalation order. The exit status is nonzero when nothing parsed or
// any input was malformed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gbpolar/internal/obs/critpath"
)

func main() {
	var (
		topK   = flag.Int("k", 5, "slowest spans listed per run")
		asJSON = flag.Bool("json", false, "emit critpath.Report JSON documents instead of text")
		det    = flag.Bool("det", false, "deterministic structure view only (phase order, comm rounds, span counts)")
		outF   = flag.String("out", "", "write output to this file instead of stdout")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: gbtrace [-k n] [-json] [-det] [-out file] <trace.json | dir>"))
	}
	paths, err := expand(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outF != "" {
		f, err := os.Create(*outF)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	runs := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		parsed, err := critpath.Parse(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, run := range parsed {
			rep := critpath.Analyze(run, *topK)
			switch {
			case *asJSON:
				if err := critpath.WriteJSON(out, rep); err != nil {
					fatal(err)
				}
			default:
				if runs > 0 {
					fmt.Fprintln(out)
				}
				if len(paths) > 1 || len(parsed) > 1 {
					fmt.Fprintf(out, "== %s ==\n", displayName(path, flag.Arg(0)))
				}
				if err := critpath.WriteText(out, rep, *det); err != nil {
					fatal(err)
				}
			}
			runs++
		}
	}
	if runs == 0 {
		fatal(fmt.Errorf("%s: no runs found", flag.Arg(0)))
	}
}

// expand resolves the single path argument: a file stands alone, a
// directory contributes every *.json inside it in name order.
func expand(arg string) ([]string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{arg}, nil
	}
	entries, err := os.ReadDir(arg)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		paths = append(paths, filepath.Join(arg, e.Name()))
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no .json trace files", arg)
	}
	return paths, nil
}

// displayName shortens a path under the directory argument for headers;
// a file argument (rel ".") shows its base name.
func displayName(path, root string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return filepath.Base(path)
		}
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gbtrace:", err)
	os.Exit(1)
}
