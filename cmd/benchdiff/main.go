// Command benchdiff compares two benchjson trajectories and exits
// nonzero when the new one regresses against the baseline. Wall times
// are gated on host-normalized ns/op ratios (a uniformly slower machine
// cancels out); ops counts, modeled times, and histogram summaries are
// deterministic, so any drift there is reported regardless of noise.
// `make bench-gate` runs it as `benchdiff BENCH_seed.json BENCH_head.json`.
//
// Usage:
//
//	benchdiff [-max-ratio 1.6] [-max-model-ratio 1.05] [-min-wall-ms 1] old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gbpolar/internal/bench"
)

func main() {
	maxRatioF := flag.Float64("max-ratio", 0, "host-normalized ns/op ratio gate (0 = default 1.6)")
	maxModelF := flag.Float64("max-model-ratio", 0, "deterministic modeled-seconds ratio gate (0 = default 1.05)")
	minWallF := flag.Int64("min-wall-ms", 0, "skip the ns/op gate for kernels faster than this (0 = default 1ms)")
	flag.Parse()
	if flag.NArg() != 2 {
		fatal(fmt.Errorf("usage: benchdiff [flags] old.json new.json"))
	}

	old, err := readTrajectory(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	head, err := readTrajectory(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	d := bench.DiffTrajectories(old, head, bench.DiffOptions{
		MaxKernelRatio: *maxRatioF,
		MaxModelRatio:  *maxModelF,
		MinWallNs:      *minWallF * 1e6,
	})
	for _, n := range d.Notes {
		fmt.Printf("note: %s\n", n)
	}
	// Explicit membership delta: kernels present in only one trajectory,
	// so a coverage change never hides inside the note stream.
	if len(d.Added) > 0 {
		fmt.Printf("added kernels (%d, only in %s):\n", len(d.Added), flag.Arg(1))
		for _, name := range d.Added {
			fmt.Printf("  + %s\n", name)
		}
	}
	if len(d.Removed) > 0 {
		fmt.Printf("removed kernels (%d, only in %s):\n", len(d.Removed), flag.Arg(0))
		for _, name := range d.Removed {
			fmt.Printf("  - %s\n", name)
		}
	}
	fmt.Printf("host ratio %.3fx (%s -> %s)\n", d.HostRatio, old.Label, head.Label)
	if len(d.Regressions) > 0 {
		for _, r := range d.Regressions {
			fmt.Printf("REGRESSION %s\n", r)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s\n", len(d.Regressions), flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("ok: %d kernels, no regressions vs %s\n", len(head.Kernels), flag.Arg(0))
}

func readTrajectory(path string) (*bench.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := bench.ReadTrajectory(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
