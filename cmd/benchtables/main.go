// Command benchtables regenerates the paper's tables and figures
// (DESIGN.md §4): it runs the requested experiment(s) and prints the rows
// each figure plots.
//
// Usage:
//
//	benchtables -exp=fig8a                # one experiment
//	benchtables -exp=all                  # everything
//	benchtables -exp=fig5 -scale=0.05     # BTV/CMV at 5% of paper size
//	benchtables -exp=fig9 -maxatoms=4000  # cap the ZDock roster
//	benchtables -exp=fig10 -csv           # CSV instead of a text table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gbpolar/internal/bench"
)

// writeCSV persists one experiment table under dir.
func writeCSV(dir, id string, tab *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := tab.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id, or 'all' (ids: "+fmt.Sprint(bench.IDs())+")")
		scale    = flag.Float64("scale", 0, "fraction of the paper's BTV/CMV sizes to run (default 0.01)")
		runs     = flag.Int("runs", 0, "noisy samples for min/max envelopes (default 20)")
		maxAtoms = flag.Int("maxatoms", 0, "cap the ZDock roster at this atom count (0 = full)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outdir   = flag.String("outdir", "", "also write each experiment as <outdir>/<id>.csv")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "benchtables: -exp required (or -list); ids:", bench.IDs())
		os.Exit(2)
	}
	opts := bench.DefaultOptions()
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	opts.MaxAtoms = *maxAtoms

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", id, err)
			os.Exit(1)
		}
		var perr error
		if *csv {
			perr = tab.CSV(os.Stdout)
		} else {
			perr = tab.Print(os.Stdout)
		}
		if perr != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", id, perr)
			os.Exit(1)
		}
		if *outdir != "" {
			if err := writeCSV(*outdir, id, tab); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s generated in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
