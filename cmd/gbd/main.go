// Command gbd is the Epol serving daemon: a long-lived process that
// accepts molecule jobs over HTTP/JSON and runs each through the
// supervised escalation ladder with phase checkpoints.
//
// Usage:
//
//	gbd -data-dir /var/lib/gbd                  # serve on 127.0.0.1:8677
//	gbd -data-dir d -addr :0                    # pick a free port (printed)
//	gbd -data-dir d -obs-addr 127.0.0.1:9090    # live /metrics + pprof
//	gbd -data-dir d -quota-rate 2 -quota-burst 5
//
// API (every non-2xx body is a typed {"error": {code, message}}):
//
//	POST /v1/jobs       submit {molecule:{name,atoms:[{x,y,z,radius,charge}]},
//	                    processes?, threads?, deadline_ms?, tenant?, seed?}
//	                    → 202 {id, state} | 400 | 429 (+Retry-After) | 503
//	GET  /v1/jobs/{id}  → 200 {id, state, trace_id, result?, error?}
//	GET  /v1/traces/{t} → 200 newest persisted attempt trace (Chrome
//	                    trace-event JSON; analyze with gbtrace)
//	GET  /readyz        200 while admitting; 503 once draining
//	GET  /livez         200 while the process is up
//
// On SIGTERM or SIGINT the daemon drains: admission closes, in-flight
// jobs checkpoint at their next phase boundary, and the process exits 0.
// A restart over the same -data-dir re-queues unfinished jobs; each
// resumes from its newest checkpoint to a bitwise-identical result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/serve"
)

// logJSON emits one structured single-line JSON event on stderr, next
// to the human-readable lines (which stay — the smoke test and operator
// muscle memory both parse them). encoding/json renders map keys
// sorted, so the lines are stable enough to grep and diff.
func logJSON(event string, fields map[string]any) {
	doc := map[string]any{"event": event, "ts": time.Now().UTC().Format(time.RFC3339Nano)}
	for k, v := range fields {
		doc[k] = v
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return
	}
	fmt.Fprintln(os.Stderr, string(data))
}

// buildVersion reports the module version baked into the binary, or
// "devel" for a plain `go build` of the working tree.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8677", "job API listen address (\":0\" picks a free port)")
		obsAddr    = flag.String("obs-addr", "", "optional obs endpoint address (/metrics, /healthz, /readyz, /livez, pprof)")
		dataDir    = flag.String("data-dir", "", "job persistence root (required)")
		queue      = flag.Int("queue-depth", 16, "admission queue bound")
		workers    = flag.Int("workers", 1, "concurrent supervised runs")
		maxAtoms   = flag.Int("max-atoms", 20000, "largest accepted roster")
		bigP       = flag.Int("P", 4, "default processes per job")
		smallP     = flag.Int("p", 1, "default threads per process")
		retries    = flag.Int("retries", 2, "supervised retry budget per job")
		quotaRate  = flag.Float64("quota-rate", 0, "per-tenant admission rate (jobs/sec, 0 = no quotas)")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant burst (default max(1, rate))")
		shedDepth  = flag.Int("shed-depth", 0, "queue depth that pre-sheds new jobs onto the relax rung (0 = queue-depth/2, negative = never)")
		shedEps    = flag.Float64("shed-eps", 1.5, "ε relaxation factor used when shedding")
		keep       = flag.Int("keep-checkpoints", 1, "checkpoint snapshots retained per job after completion")
		ckptDelay  = flag.Duration("checkpoint-delay", 0, "slow every checkpoint save (test knob: widens the drain window)")
		memBudget  = flag.Int64("mem-budget", 1<<30, "memory budget in bytes for the modeled resident size of admitted work (413 when one serial job exceeds it, 429 when the fleet would)")
		maxRetry   = flag.Int64("max-retry-after", 60, "upper clamp in seconds on modeled Retry-After headers (lower clamp is 1s)")
	)
	flag.Parse()
	if *dataDir == "" {
		fatal(fmt.Errorf("-data-dir is required"))
	}

	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	rec.SetLabel("gbd")

	daemon, err := serve.New(serve.Config{
		DataDir:          *dataDir,
		QueueDepth:       *queue,
		Workers:          *workers,
		MaxAtoms:         *maxAtoms,
		DefaultProcesses: *bigP,
		DefaultThreads:   *smallP,
		Retries:          *retries,
		Quota:            serve.QuotaConfig{RatePerSec: *quotaRate, Burst: *quotaBurst},
		ShedQueueDepth:   *shedDepth,
		ShedEpsFactor:    *shedEps,
		KeepCheckpoints:  *keep,
		CheckpointDelay:  *ckptDelay,
		MemBudgetBytes:   *memBudget,
		MaxRetryAfterSec: *maxRetry,
		Obs:              rec,
	})
	if err != nil {
		fatal(err)
	}
	daemon.Start()

	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, rec)
		if err != nil {
			fatal(err)
		}
		defer osrv.Close()
		osrv.SetReadySource(daemon.Ready)
		fmt.Fprintf(os.Stderr, "gbd: obs endpoint on http://%s\n", osrv.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: daemon.Handler()}
	fmt.Fprintf(os.Stderr, "gbd: serving jobs on http://%s\n", ln.Addr())
	logJSON("start", map[string]any{
		"version":           buildVersion(),
		"addr":              ln.Addr().String(),
		"obs_addr":          *obsAddr,
		"data_dir":          *dataDir,
		"queue_depth":       *queue,
		"workers":           *workers,
		"default_processes": *bigP,
		"default_threads":   *smallP,
		"retries":           *retries,
		"mem_budget":        *memBudget,
		"max_retry_after":   *maxRetry,
		"jobs_requeued":     daemon.ResumedJobs(),
		"queued":            daemon.QueueDepth(),
	})

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		// Drain: admission closes immediately (typed 503s), the HTTP
		// server keeps answering polls, in-flight jobs stop at their
		// next phase boundary with durable checkpoints.
		fmt.Fprintf(os.Stderr, "gbd: %v: draining (admission closed, checkpointing in-flight jobs)\n", s)
		logJSON("drain", map[string]any{"signal": s.String(), "queued": daemon.QueueDepth()})
		start := time.Now()
		daemon.Drain()
		_ = httpSrv.Close()
		fmt.Fprintf(os.Stderr, "gbd: drained in %v\n", time.Since(start).Round(time.Millisecond))
		// What's still queued after drain is exactly what the next start
		// re-queues from disk.
		logJSON("exit", map[string]any{
			"drain_ms":            time.Since(start).Milliseconds(),
			"jobs_for_next_start": daemon.QueueDepth(),
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gbd:", err)
	os.Exit(1)
}
