package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gbpolar/internal/molecule"
	"gbpolar/internal/serve"
)

// TestServeSmoke is the process-level smoke test behind `make
// serve-smoke`: it builds the real gbd binary, starts it on a free
// port, and walks the serving contract end to end —
//
//  1. a good request completes with a result;
//  2. a malformed molecule gets a typed 400, an over-quota burst a
//     typed 429, never a crash;
//  3. SIGTERM with a job in flight drains cleanly (exit 0), and the
//     restarted daemon resumes the job to a byte-for-byte identical
//     result (same epol_bits, same born_crc32) as the uninterrupted
//     run of the same molecule.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "gbd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building gbd: %v", err)
	}
	dataDir := t.TempDir()

	// Phase 1: daemon with slowed checkpoints (so SIGTERM can land
	// mid-job) and a tight quota for the 429 probe.
	d1 := startDaemon(t, bin,
		"-data-dir", dataDir, "-addr", "127.0.0.1:0",
		"-P", "3", "-checkpoint-delay", "80ms",
		"-quota-rate", "0.2", "-quota-burst", "2")

	mol := molSpecJSON("smoke", 150, 21)

	// 1. Good request, uninterrupted: the byte-for-byte reference.
	refID := submit(t, d1.base, jobBody(mol, "ref"))
	ref := awaitDone(t, d1.base, refID)
	if ref.Result == nil || ref.Result.EpolBits == "" || ref.Result.BornCRC32 == "" {
		t.Fatalf("reference job: %+v", ref)
	}

	// 2a. Malformed molecule → typed 400.
	bad := strings.Replace(mol, `"radius":`, `"radius":-`, 1)
	code, body := post(t, d1.base, jobBody(bad, "bad"))
	if code != http.StatusBadRequest || !strings.Contains(body, serve.CodeInvalidInput) {
		t.Errorf("bad molecule: %d %s", code, body)
	}
	// 2b. Over-quota burst → typed 429 with Retry-After.
	sawQuota := false
	for i := 0; i < 3; i++ {
		if code, body := post(t, d1.base, jobBody(mol, "greedy")); code == http.StatusTooManyRequests {
			sawQuota = strings.Contains(body, serve.CodeOverQuota)
		}
	}
	if !sawQuota {
		t.Error("burst of 3 on a burst-2 bucket never drew a typed 429")
	}

	// 3. SIGTERM with a job in flight.
	victimID := submit(t, d1.base, jobBody(mol, "victim"))
	awaitState(t, d1.base, victimID, "running")
	time.Sleep(120 * time.Millisecond) // inside the slowed phase pipeline
	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d1.wait(30 * time.Second); err != nil {
		t.Fatalf("drain exit: %v", err)
	}

	// The daemon logged structured one-line JSON events for startup and
	// shutdown alongside the human lines.
	for _, want := range []string{"start", "drain", "exit"} {
		if !d1.sawEvent(want) {
			t.Errorf("no structured %q log event on stderr", want)
		}
	}

	// 4. The interrupted victim left a persisted per-attempt trace next
	// to its checkpoints; gbtrace finds a nonempty critical path in it.
	checkJobTrace(t, dataDir, victimID)

	// Restart over the same data dir; the victim resumes.
	d2 := startDaemon(t, bin, "-data-dir", dataDir, "-addr", "127.0.0.1:0", "-P", "3")
	resumed := awaitDone(t, d2.base, victimID)
	if resumed.Result == nil || !resumed.Result.Resumed {
		t.Fatalf("resumed job: %+v", resumed)
	}
	if resumed.Result.EpolBits != ref.Result.EpolBits {
		t.Errorf("resumed epol_bits %s != uninterrupted %s",
			resumed.Result.EpolBits, ref.Result.EpolBits)
	}
	if resumed.Result.BornCRC32 != ref.Result.BornCRC32 {
		t.Errorf("resumed born_crc32 %s != uninterrupted %s",
			resumed.Result.BornCRC32, ref.Result.BornCRC32)
	}
	// The reference job's view survived the restart too.
	again := awaitDone(t, d2.base, refID)
	if again.Result == nil || again.Result.EpolBits != ref.Result.EpolBits {
		t.Errorf("restart lost the reference job's result: %+v", again)
	}
}

// checkJobTrace builds gbtrace, points it at a job's trace directory,
// and requires a well-formed report with a nonempty critical path. When
// GBD_TRACE_ARTIFACT_DIR is set (the CI serve-smoke job), the job's
// traces are copied there for upload.
func checkJobTrace(t *testing.T, dataDir, jobID string) {
	t.Helper()
	traceDir := filepath.Join(dataDir, jobID, "trace")
	entries, err := os.ReadDir(traceDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("job %s has no persisted traces: %v", jobID, err)
	}

	gbtrace := filepath.Join(t.TempDir(), "gbtrace")
	build := exec.Command("go", "build", "-o", gbtrace, "gbpolar/cmd/gbtrace")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building gbtrace: %v", err)
	}
	out, err := exec.Command(gbtrace, "-json", traceDir).Output()
	if err != nil {
		t.Fatalf("gbtrace over %s: %v", traceDir, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	reports, nonempty := 0, 0
	for dec.More() {
		var rep struct {
			Ranks int `json:"ranks"`
			Path  []struct {
				Kind string `json:"kind"`
			} `json:"critical_path"`
		}
		if err := dec.Decode(&rep); err != nil {
			t.Fatalf("gbtrace JSON: %v\n%s", err, out)
		}
		reports++
		if len(rep.Path) > 0 && rep.Ranks == 3 {
			nonempty++
		}
	}
	if reports == 0 || nonempty == 0 {
		t.Fatalf("gbtrace found %d reports, %d with a nonempty 3-rank critical path:\n%s",
			reports, nonempty, out)
	}

	if artDir := os.Getenv("GBD_TRACE_ARTIFACT_DIR"); artDir != "" {
		dst := filepath.Join(artDir, jobID)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatalf("artifact dir: %v", err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(traceDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

type daemon struct {
	cmd  *exec.Cmd
	base string
	done chan error

	mu       sync.Mutex
	events   map[string]bool
	scanDone chan struct{}
}

// sawEvent reports whether the daemon emitted a structured JSON log
// line with the given event name. It waits for the stderr scanner to
// finish first, so it is only meaningful after the process exited.
func (d *daemon) sawEvent(event string) bool {
	select {
	case <-d.scanDone:
	case <-time.After(10 * time.Second):
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events[event]
}

// startDaemon launches the gbd binary and parses its listen address
// from the startup line on stderr.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1),
		events: make(map[string]bool), scanDone: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [gbd]", line)
			if strings.HasPrefix(line, "{") {
				var doc struct {
					Event string `json:"event"`
				}
				if json.Unmarshal([]byte(line), &doc) == nil && doc.Event != "" {
					d.mu.Lock()
					d.events[doc.Event] = true
					d.mu.Unlock()
				}
			}
			if _, after, ok := strings.Cut(line, "serving jobs on http://"); ok {
				select {
				case addrCh <- strings.TrimSpace(after):
				default:
				}
			}
		}
	}()
	go func() { d.done <- cmd.Wait() }()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case err := <-d.done:
		t.Fatalf("gbd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("gbd never printed its listen address")
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-d.done
		}
	})
	return d
}

// wait blocks for process exit and requires status 0.
func (d *daemon) wait(timeout time.Duration) error {
	select {
	case err := <-d.done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("gbd did not exit within %v", timeout)
	}
}

// molSpecJSON renders a synthetic globule as the request's molecule
// JSON fragment.
func molSpecJSON(name string, atoms int, seed int64) string {
	m := molecule.Exactly(molecule.Globule(name, atoms, seed), atoms, seed)
	var b strings.Builder
	fmt.Fprintf(&b, `{"name":%q,"atoms":[`, name)
	for i, a := range m.Atoms {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"x":%g,"y":%g,"z":%g,"radius":%g,"charge":%g}`,
			a.Pos.X, a.Pos.Y, a.Pos.Z, a.Radius, a.Charge)
	}
	b.WriteString("]}")
	return b.String()
}

func jobBody(molJSON, tenant string) string {
	return fmt.Sprintf(`{"molecule":%s,"tenant":%q}`, molJSON, tenant)
}

func post(t *testing.T, base, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func submit(t *testing.T, base, body string) string {
	t.Helper()
	code, data := post(t, base, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var view serve.JobView
	if err := json.Unmarshal([]byte(data), &view); err != nil || view.ID == "" {
		t.Fatalf("submit response %s: %v", data, err)
	}
	return view.ID
}

func getView(t *testing.T, base, id string) serve.JobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET %s: %v", id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", id, resp.StatusCode, data)
	}
	var view serve.JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatalf("job view %s: %v", data, err)
	}
	return view
}

func awaitState(t *testing.T, base, id, state string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if getView(t, base, id).State == state {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, state)
}

func awaitDone(t *testing.T, base, id string) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		view := getView(t, base, id)
		switch view.State {
		case serve.StateDone:
			return view
		case serve.StateFailed, serve.StateInterrupted:
			t.Fatalf("job %s terminal state %q: %+v", id, view.State, view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return serve.JobView{}
}
