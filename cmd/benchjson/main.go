// Command benchjson collects one bench trajectory — the roster × driver
// layout grid of internal/bench — and writes it as schema-versioned JSON
// for benchdiff to gate against. `make bench-json` produces the head
// trajectory; the committed BENCH_seed.json baseline was produced the
// same way (see EXPERIMENTS.md for regeneration).
//
// Usage:
//
//	benchjson -label seed -out BENCH_seed.json -max-atoms 2000 -repeats 3
package main

import (
	"flag"
	"fmt"
	"os"

	"gbpolar/internal/bench"
)

func main() {
	labelF := flag.String("label", "dev", "trajectory label embedded in the JSON")
	outF := flag.String("out", "", "output path (default BENCH_<label>.json)")
	maxAtomsF := flag.Int("max-atoms", 2000, "largest roster molecule to run (0 = full roster)")
	repeatsF := flag.Int("repeats", 3, "runs per kernel; the minimum wall time is kept")
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("usage: benchjson [-label L] [-out FILE] [-max-atoms N] [-repeats R]"))
	}

	o := bench.DefaultOptions()
	o.MaxAtoms = *maxAtomsF
	traj, err := bench.CollectTrajectory(o, *labelF, *repeatsF)
	if err != nil {
		fatal(err)
	}

	out := *outF
	if out == "" {
		out = "BENCH_" + *labelF + ".json"
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := traj.Write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d kernels, %d histograms (label %q, max-atoms %d, repeats %d)\n",
		out, len(traj.Kernels), len(traj.Hists), traj.Label, traj.MaxAtoms, traj.Repeats)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
