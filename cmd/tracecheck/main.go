// Command tracecheck validates observability artifacts produced by
// gbpol/clustersim. Given a trace argument (a Chrome trace-event JSON
// from -trace-out), the file must parse, contain at least one complete
// ("X") span event, and — when -phases is given — every thread timeline
// (pid,tid pair) that emitted spans must contain all of the named phase
// spans. Given -metrics (a -metrics-out file of concatenated JSON
// metrics documents), every histogram must have strictly increasing
// bucket bounds, bucket counts summing to the total, and ordered
// quantiles. It is the assertion half of `make trace-smoke`.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -phases octree-build,approx-integrals trace.json
//	tracecheck -metrics metrics.json
//	tracecheck -metrics metrics.json trace.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// traceEvent is the subset of the Chrome trace-event schema we assert on.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// metricsDoc is the subset of the obs.WriteJSON schema we assert on.
type metricsDoc struct {
	Label  string        `json:"label"`
	Hists  []metricsHist `json:"hists"`
	GaugeH []metricsHist `json:"gauge_hists"`
}

type metricsHist struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	P50     int64  `json:"p50"`
	P90     int64  `json:"p90"`
	P99     int64  `json:"p99"`
	Buckets []struct {
		Le    int64 `json:"le"`
		Count int64 `json:"count"`
	} `json:"buckets"`
}

func main() {
	phasesF := flag.String("phases", "", "comma-separated span names every span-emitting thread must contain")
	metricsF := flag.String("metrics", "", "validate this -metrics-out file (concatenated JSON metrics documents)")
	flag.Parse()
	if flag.NArg() > 1 || (flag.NArg() == 0 && *metricsF == "") {
		fatal(fmt.Errorf("usage: tracecheck [-phases a,b,c] [-metrics metrics.json] [trace.json]"))
	}

	if *metricsF != "" {
		if err := checkMetrics(*metricsF); err != nil {
			fatal(err)
		}
	}
	if flag.NArg() == 1 {
		if err := checkTrace(flag.Arg(0), *phasesF); err != nil {
			fatal(err)
		}
	}
}

func checkTrace(path, phases string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}

	type thread struct{ pid, tid int }
	spans := 0
	byThread := make(map[thread]map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		t := thread{ev.Pid, ev.Tid}
		if byThread[t] == nil {
			byThread[t] = make(map[string]bool)
		}
		byThread[t][ev.Name] = true
	}
	if spans == 0 {
		return fmt.Errorf("%s: no complete (ph=X) span events", path)
	}

	if phases != "" {
		var missing []string
		for t, names := range byThread {
			for _, phase := range strings.Split(phases, ",") {
				if !names[strings.TrimSpace(phase)] {
					missing = append(missing,
						fmt.Sprintf("pid=%d tid=%d lacks %q", t.pid, t.tid, phase))
				}
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: %s", path, strings.Join(missing, "; "))
		}
	}
	fmt.Printf("%s: ok (%d spans across %d threads)\n", path, spans, len(byThread))
	return nil
}

// checkMetrics validates a -metrics-out file: one or more concatenated
// obs.WriteJSON documents, each of whose histograms must satisfy the
// exporter's structural invariants.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	docs, hists := 0, 0
	for {
		var doc metricsDoc
		if err := dec.Decode(&doc); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("%s: document %d: not valid metrics JSON: %w", path, docs+1, err)
		}
		docs++
		for _, side := range []struct {
			kind string
			hs   []metricsHist
		}{{"hist", doc.Hists}, {"gauge_hist", doc.GaugeH}} {
			for _, h := range side.hs {
				if err := checkHist(h); err != nil {
					return fmt.Errorf("%s: document %d (%s): %s %q: %w",
						path, docs, doc.Label, side.kind, h.Name, err)
				}
				hists++
			}
		}
	}
	if docs == 0 {
		return fmt.Errorf("%s: no metrics documents", path)
	}
	fmt.Printf("%s: ok (%d documents, %d histograms)\n", path, docs, hists)
	return nil
}

func checkHist(h metricsHist) error {
	if h.Count < 0 {
		return fmt.Errorf("negative count %d", h.Count)
	}
	var sum int64
	prev := int64(-1)
	for i, b := range h.Buckets {
		if b.Le <= prev {
			return fmt.Errorf("bucket %d bound %d not above previous %d", i, b.Le, prev)
		}
		if b.Count <= 0 {
			return fmt.Errorf("bucket %d (le=%d) has non-positive count %d (empty buckets are elided)", i, b.Le, b.Count)
		}
		prev = b.Le
		sum += b.Count
	}
	if sum != h.Count {
		return fmt.Errorf("bucket counts sum to %d, total says %d", sum, h.Count)
	}
	if h.P50 > h.P90 || h.P90 > h.P99 {
		return fmt.Errorf("quantiles out of order: p50=%d p90=%d p99=%d", h.P50, h.P90, h.P99)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
