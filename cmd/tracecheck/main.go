// Command tracecheck validates a Chrome trace-event JSON file produced
// by gbpol/clustersim -trace-out: the file must parse, contain at least
// one complete ("X") span event, and — when -phases is given — every
// thread timeline (pid,tid pair) that emitted spans must contain all of
// the named phase spans. It is the assertion half of `make trace-smoke`.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -phases octree-build,approx-integrals trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// traceEvent is the subset of the Chrome trace-event schema we assert on.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	phasesF := flag.String("phases", "", "comma-separated span names every span-emitting thread must contain")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: tracecheck [-phases a,b,c] trace.json"))
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: not valid trace JSON: %w", path, err))
	}

	type thread struct{ pid, tid int }
	spans := 0
	byThread := make(map[thread]map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		t := thread{ev.Pid, ev.Tid}
		if byThread[t] == nil {
			byThread[t] = make(map[string]bool)
		}
		byThread[t][ev.Name] = true
	}
	if spans == 0 {
		fatal(fmt.Errorf("%s: no complete (ph=X) span events", path))
	}

	if *phasesF != "" {
		var missing []string
		for t, names := range byThread {
			for _, phase := range strings.Split(*phasesF, ",") {
				if !names[strings.TrimSpace(phase)] {
					missing = append(missing,
						fmt.Sprintf("pid=%d tid=%d lacks %q", t.pid, t.tid, phase))
				}
			}
		}
		if len(missing) > 0 {
			fatal(fmt.Errorf("%s: %s", path, strings.Join(missing, "; ")))
		}
	}
	fmt.Printf("%s: ok (%d spans across %d threads)\n", path, spans, len(byThread))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
