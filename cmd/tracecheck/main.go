// Command tracecheck validates observability artifacts produced by
// gbpol/clustersim. Given a trace argument (a Chrome trace-event JSON
// from -trace-out), the file must parse, contain at least one complete
// ("X") span event, and — when -phases is given — every thread timeline
// (pid,tid pair) that emitted spans must contain all of the named phase
// spans. Given -metrics (a -metrics-out file of concatenated JSON
// metrics documents), every histogram must have strictly increasing
// bucket bounds, bucket counts summing to the total, and ordered
// quantiles. Given -critpath (a gbtrace -json output: one or more
// concatenated critpath.Report documents), every report must satisfy
// the analyzer's structural invariants — per-rank compute+comm+idle
// summing exactly to the wall time, sorted rank and phase keys, a
// contiguous monotone critical path whose segment durations sum to the
// crit_compute/crit_comm split, comm fraction within [0, 1000]‰, and
// top spans sorted slowest-first. It is the assertion half of
// `make trace-smoke`.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -phases octree-build,approx-integrals trace.json
//	tracecheck -metrics metrics.json
//	tracecheck -metrics metrics.json trace.json
//	tracecheck -critpath critpath.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// traceEvent is the subset of the Chrome trace-event schema we assert on.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// metricsDoc is the subset of the obs.WriteJSON schema we assert on.
type metricsDoc struct {
	Label  string        `json:"label"`
	Hists  []metricsHist `json:"hists"`
	GaugeH []metricsHist `json:"gauge_hists"`
}

type metricsHist struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	P50     int64  `json:"p50"`
	P90     int64  `json:"p90"`
	P99     int64  `json:"p99"`
	Buckets []struct {
		Le    int64 `json:"le"`
		Count int64 `json:"count"`
	} `json:"buckets"`
}

func main() {
	phasesF := flag.String("phases", "", "comma-separated span names every span-emitting thread must contain")
	metricsF := flag.String("metrics", "", "validate this -metrics-out file (concatenated JSON metrics documents)")
	critpathF := flag.String("critpath", "", "validate this gbtrace -json output (concatenated critical-path reports)")
	flag.Parse()
	if flag.NArg() > 1 || (flag.NArg() == 0 && *metricsF == "" && *critpathF == "") {
		fatal(fmt.Errorf("usage: tracecheck [-phases a,b,c] [-metrics metrics.json] [-critpath critpath.json] [trace.json]"))
	}

	if *metricsF != "" {
		if err := checkMetrics(*metricsF); err != nil {
			fatal(err)
		}
	}
	if *critpathF != "" {
		if err := checkCritPath(*critpathF); err != nil {
			fatal(err)
		}
	}
	if flag.NArg() == 1 {
		if err := checkTrace(flag.Arg(0), *phasesF); err != nil {
			fatal(err)
		}
	}
}

func checkTrace(path, phases string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}

	type thread struct{ pid, tid int }
	spans := 0
	byThread := make(map[thread]map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		t := thread{ev.Pid, ev.Tid}
		if byThread[t] == nil {
			byThread[t] = make(map[string]bool)
		}
		byThread[t][ev.Name] = true
	}
	if spans == 0 {
		return fmt.Errorf("%s: no complete (ph=X) span events", path)
	}

	if phases != "" {
		var missing []string
		for t, names := range byThread {
			for _, phase := range strings.Split(phases, ",") {
				if !names[strings.TrimSpace(phase)] {
					missing = append(missing,
						fmt.Sprintf("pid=%d tid=%d lacks %q", t.pid, t.tid, phase))
				}
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: %s", path, strings.Join(missing, "; "))
		}
	}
	fmt.Printf("%s: ok (%d spans across %d threads)\n", path, spans, len(byThread))
	return nil
}

// checkMetrics validates a -metrics-out file: one or more concatenated
// obs.WriteJSON documents, each of whose histograms must satisfy the
// exporter's structural invariants.
func checkMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	docs, hists := 0, 0
	for {
		var doc metricsDoc
		if err := dec.Decode(&doc); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("%s: document %d: not valid metrics JSON: %w", path, docs+1, err)
		}
		docs++
		for _, side := range []struct {
			kind string
			hs   []metricsHist
		}{{"hist", doc.Hists}, {"gauge_hist", doc.GaugeH}} {
			for _, h := range side.hs {
				if err := checkHist(h); err != nil {
					return fmt.Errorf("%s: document %d (%s): %s %q: %w",
						path, docs, doc.Label, side.kind, h.Name, err)
				}
				hists++
			}
		}
	}
	if docs == 0 {
		return fmt.Errorf("%s: no metrics documents", path)
	}
	fmt.Printf("%s: ok (%d documents, %d histograms)\n", path, docs, hists)
	return nil
}

// critReport is the subset of the critpath.Report schema we assert on
// (deliberately re-declared from the wire format, not imported: the
// checker validates what is actually in the file).
type critReport struct {
	Ranks   int   `json:"ranks"`
	WallUs  int64 `json:"wall_us"`
	PerRank []struct {
		Rank      int   `json:"rank"`
		ComputeUs int64 `json:"compute_us"`
		CommUs    int64 `json:"comm_us"`
		IdleUs    int64 `json:"idle_us"`
		SlackUs   int64 `json:"slack_us"`
	} `json:"per_rank"`
	Phases []struct {
		Phase     string `json:"phase"`
		Rank      int    `json:"rank"`
		ComputeUs int64  `json:"compute_us"`
		CommUs    int64  `json:"comm_us"`
	} `json:"phases"`
	Path []struct {
		Kind    string `json:"kind"`
		StartUs int64  `json:"start_us"`
		EndUs   int64  `json:"end_us"`
	} `json:"critical_path"`
	CritComputeUs    int64 `json:"crit_compute_us"`
	CritCommUs       int64 `json:"crit_comm_us"`
	CommFracPermille int64 `json:"comm_frac_permille"`
	TopSpans         []struct {
		DurUs int64 `json:"dur_us"`
	} `json:"top_spans"`
	PhaseOrder []struct {
		Rank int `json:"rank"`
	} `json:"phase_order"`
	CommRounds map[string]int64 `json:"comm_rounds"`
	SpanCounts map[string]int64 `json:"span_counts"`
}

// checkCritPath validates a gbtrace -json file: one or more concatenated
// critical-path reports, each satisfying the analyzer's invariants.
func checkCritPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	docs := 0
	for {
		var rep critReport
		if err := dec.Decode(&rep); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("%s: document %d: not valid critical-path JSON: %w", path, docs+1, err)
		}
		docs++
		if err := checkCritReport(rep); err != nil {
			return fmt.Errorf("%s: document %d: %w", path, docs, err)
		}
	}
	if docs == 0 {
		return fmt.Errorf("%s: no critical-path reports", path)
	}
	fmt.Printf("%s: ok (%d critical-path reports)\n", path, docs)
	return nil
}

func checkCritReport(rep critReport) error {
	if rep.Ranks < 0 || rep.WallUs < 0 {
		return fmt.Errorf("negative ranks (%d) or wall (%d)", rep.Ranks, rep.WallUs)
	}
	if len(rep.PerRank) != rep.Ranks {
		return fmt.Errorf("%d per-rank lanes for %d ranks", len(rep.PerRank), rep.Ranks)
	}
	// Lanes: sorted by rank, non-negative, and compute+comm+idle must sum
	// EXACTLY to the wall — the attribution identity that makes the lane
	// table trustworthy.
	for i, lane := range rep.PerRank {
		if i > 0 && lane.Rank <= rep.PerRank[i-1].Rank {
			return fmt.Errorf("per_rank not sorted: rank %d after %d", lane.Rank, rep.PerRank[i-1].Rank)
		}
		if lane.ComputeUs < 0 || lane.CommUs < 0 || lane.IdleUs < 0 || lane.SlackUs < 0 {
			return fmt.Errorf("rank %d has a negative attribution", lane.Rank)
		}
		if sum := lane.ComputeUs + lane.CommUs + lane.IdleUs; sum != rep.WallUs {
			return fmt.Errorf("rank %d attribution %d != wall %d", lane.Rank, sum, rep.WallUs)
		}
	}
	for i, ph := range rep.Phases {
		if ph.ComputeUs < 0 || ph.CommUs < 0 {
			return fmt.Errorf("phase %q rank %d has a negative attribution", ph.Phase, ph.Rank)
		}
		if i > 0 {
			prev := rep.Phases[i-1]
			if ph.Phase < prev.Phase || (ph.Phase == prev.Phase && ph.Rank <= prev.Rank) {
				return fmt.Errorf("phases not sorted at %q rank %d", ph.Phase, ph.Rank)
			}
		}
	}
	// The critical path: contiguous, monotone, segment kinds known, and
	// its compute/comm split consistent with the step durations.
	var pathCompute, pathComm int64
	for i, st := range rep.Path {
		if st.EndUs < st.StartUs {
			return fmt.Errorf("path step %d runs backward: [%d, %d]", i, st.StartUs, st.EndUs)
		}
		if i > 0 && st.StartUs != rep.Path[i-1].EndUs {
			return fmt.Errorf("path step %d starts at %d, previous ended at %d", i, st.StartUs, rep.Path[i-1].EndUs)
		}
		switch st.Kind {
		case "compute":
			pathCompute += st.EndUs - st.StartUs
		case "comm":
			pathComm += st.EndUs - st.StartUs
		default:
			return fmt.Errorf("path step %d has unknown kind %q", i, st.Kind)
		}
	}
	if pathCompute != rep.CritComputeUs || pathComm != rep.CritCommUs {
		return fmt.Errorf("path segments sum to compute=%d comm=%d, report says %d/%d",
			pathCompute, pathComm, rep.CritComputeUs, rep.CritCommUs)
	}
	if total := rep.CritComputeUs + rep.CritCommUs; total > rep.WallUs {
		return fmt.Errorf("critical path %d exceeds wall %d", total, rep.WallUs)
	}
	if rep.CommFracPermille < 0 || rep.CommFracPermille > 1000 {
		return fmt.Errorf("comm fraction %d out of [0, 1000] permille", rep.CommFracPermille)
	}
	for i := 1; i < len(rep.TopSpans); i++ {
		if rep.TopSpans[i].DurUs > rep.TopSpans[i-1].DurUs {
			return fmt.Errorf("top_spans not sorted slowest-first at index %d", i)
		}
	}
	for i, po := range rep.PhaseOrder {
		if i > 0 && po.Rank <= rep.PhaseOrder[i-1].Rank {
			return fmt.Errorf("phase_order not sorted at rank %d", po.Rank)
		}
	}
	for _, counts := range []map[string]int64{rep.CommRounds, rep.SpanCounts} {
		for name, n := range counts {
			if n <= 0 {
				return fmt.Errorf("count for %q is %d, want positive", name, n)
			}
		}
	}
	return nil
}

func checkHist(h metricsHist) error {
	if h.Count < 0 {
		return fmt.Errorf("negative count %d", h.Count)
	}
	var sum int64
	prev := int64(-1)
	for i, b := range h.Buckets {
		if b.Le <= prev {
			return fmt.Errorf("bucket %d bound %d not above previous %d", i, b.Le, prev)
		}
		if b.Count <= 0 {
			return fmt.Errorf("bucket %d (le=%d) has non-positive count %d (empty buckets are elided)", i, b.Le, b.Count)
		}
		prev = b.Le
		sum += b.Count
	}
	if sum != h.Count {
		return fmt.Errorf("bucket counts sum to %d, total says %d", sum, h.Count)
	}
	if h.P50 > h.P90 || h.P90 > h.P99 {
		return fmt.Errorf("quantiles out of order: p50=%d p90=%d p99=%d", h.P50, h.P90, h.P99)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
