// Hybrid vs distributed: run the same molecule through OCT_CILK, OCT_MPI
// and OCT_MPI+CILK layouts and print what each costs on the modeled
// cluster — the §IV-B comparison in miniature (memory replication,
// communication, scheduling overheads).
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

func main() {
	mol := molecule.ScaledCMV(20000) // a capsid-shell slice
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	machine := perf.Lonestar4()
	cal := perf.DefaultCalibration()

	fmt.Printf("workload: %s, %d atoms, %d q-points, %.1f MB working set\n\n",
		mol.Name, sys.NumAtoms(), sys.NumQPoints(), float64(sys.DataBytes())/(1<<20))
	fmt.Println("layout            Epol (kcal/mol)   comp      comm      mem/node   steals")

	show := func(name string, res *gb.Result) {
		shape := perf.RunShape{
			Processes:         res.Processes,
			ThreadsPerProcess: res.ThreadsPerProcess,
			DataBytes:         sys.DataBytes(),
		}
		b, err := machine.Price(cal, shape, res.PerCoreOps, res.Traffic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %14.2f   %-8s  %-8s  %6.1f MB   %d\n",
			name, res.Epol,
			fmt.Sprintf("%.1fms", b.CompSeconds*1e3),
			fmt.Sprintf("%.1fms", b.CommSeconds*1e3),
			float64(b.MemPerNodeBytes)/(1<<20), res.Steals)
	}

	pool := sched.New(12)
	cilk, err := sys.Run(gb.RunSpec{Pool: pool})
	if err != nil {
		log.Fatal(err)
	}
	pool.Close()
	show("OCT_CILK 1×12", cilk)

	mpi, err := sys.Run(gb.RunSpec{Processes: 12})
	if err != nil {
		log.Fatal(err)
	}
	show("OCT_MPI 12×1", mpi)

	hyb, err := sys.Run(gb.RunSpec{Processes: 2, ThreadsPerProcess: 6})
	if err != nil {
		log.Fatal(err)
	}
	show("OCT_MPI+CILK 2×6", hyb)

	fmt.Println("\nsame energy from all three layouts; the hybrid holds 1/6 the")
	fmt.Println("memory of the pure-MPI run and pays less synchronization skew.")
}
