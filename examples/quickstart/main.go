// Quickstart: compute the GB polarization energy of a synthetic protein
// with the octree-based r⁶ algorithm and compare it against the exact
// (naïve) reference.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func main() {
	// 1. Get a molecule. Synthetic here; molecule.LoadFile reads PQR or
	//    XYZRQ files of real proteins.
	mol := molecule.Exactly(molecule.Globule("demo-protein", 3000, 42), 3000, 42)
	fmt.Printf("molecule: %s with %d atoms, net charge %+.2f e\n",
		mol.Name, mol.NumAtoms(), mol.TotalCharge())

	// 2. Sample Gaussian quadrature points from the molecular surface.
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface:  %d quadrature points, %.0f Å² exposed area\n",
		surf.NumPoints(), surf.Area)

	// 3. Prepare the system (builds the atoms and quadrature octrees).
	params := gb.DefaultParams() // ε = 0.9 for both phases, like the paper
	sys, err := gb.NewSystem(mol, surf, params)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compute: serial octree run (the zero RunSpec).
	res, err := sys.Run(gb.RunSpec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noctree:   Epol = %.2f kcal/mol  (%d interactions, %v)\n",
		res.Epol, res.TotalOps(), res.Wall)

	// 5. Validate against the exact quadratic evaluation of Eqs. 2/4.
	radii, bornOps := sys.NaiveBornRadiiR6()
	exact, epolOps := sys.NaiveEpol(radii)
	fmt.Printf("naive:    Epol = %.2f kcal/mol  (%d interactions)\n",
		exact, bornOps+epolOps)
	fmt.Printf("error:    %.3f%%  with %.1f× fewer interactions\n",
		100*math.Abs(res.Epol-exact)/math.Abs(exact),
		float64(bornOps+epolOps)/float64(res.TotalOps()))
}
