// Energy minimization: relax a strained structure on the GB/SA surface —
// the simplest of the molecular-dynamics applications the compared
// packages (Table II) wrap around their GB kernels. Every radii refresh
// re-runs the paper's Fig. 4 pipeline.
//
// Run with:
//
//	go run ./examples/minimize
package main

import (
	"fmt"
	"log"

	"gbpolar/internal/gb"
	"gbpolar/internal/md"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func main() {
	// Build a strained input: a protein-like globule with a handful of
	// atoms squeezed too close to their neighbors.
	mol := molecule.Exactly(molecule.Globule("strained", 400, 23), 400, 23)
	for i := 0; i < 20; i++ {
		j := i * 17 % mol.NumAtoms()
		k := (j + 1) % mol.NumAtoms()
		// Drag atom k right next to atom j.
		dir := mol.Atoms[k].Pos.Sub(mol.Atoms[j].Pos).Unit()
		mol.Atoms[k].Pos = mol.Atoms[j].Pos.Add(dir.Scale(0.9))
	}
	trace, err := md.Minimize(mol, gb.DefaultParams(), surface.DefaultConfig(), md.Config{
		Steps:        30,
		RadiiRefresh: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("step   Epol (kcal/mol)   clash (kcal/mol)   total     |grad| RMS   step Å")
	for _, s := range trace.Steps {
		fmt.Printf("%4d   %14.2f   %16.3f   %9.2f   %9.4f   %7.4f\n",
			s.Index, s.Epol, s.Repulsion, s.Total, s.GradientRMS, s.StepSize)
	}
	if len(trace.Steps) > 0 {
		first, last := trace.Steps[0], trace.Steps[len(trace.Steps)-1]
		fmt.Printf("\nrelaxed %d steps: total %.2f → %.2f kcal/mol (converged: %v)\n",
			len(trace.Steps), first.Total, last.Total, trace.Converged)
	}
}
