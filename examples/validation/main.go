// Validation ladder: climb the model hierarchy of the paper's
// introduction on one small molecule — finite-difference Poisson
// (the expensive reference), exact GB with surface-r⁶ radii (Eq. 2/4),
// and the octree-approximated GB at several ε — and watch cost fall as
// the approximations stack while the energy stays anchored.
//
// Run with:
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"
	"time"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/pb"
	"gbpolar/internal/surface"
)

func main() {
	mol := molecule.Exactly(molecule.Globule("val", 150, 5), 150, 5)
	fmt.Printf("molecule: %d atoms\n\n", mol.NumAtoms())
	fmt.Println("model                              Epol (kcal/mol)     time")

	// Rung 1: Poisson reference (the §I gold standard).
	start := time.Now()
	pbRes, err := pb.Solve(mol, pb.Config{Dim: 81})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson FD (81³ grid, %4d sweeps)  %12.2f   %8v\n",
		pbRes.Iterations, pbRes.Epol, time.Since(start).Round(time.Millisecond))

	// Rung 2: exact GB.
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	radii, _ := sys.NaiveBornRadiiR6()
	exact, _ := sys.NaiveEpol(radii)
	fmt.Printf("GB exact (naive Eq. 2/4)           %12.2f   %8v\n",
		exact, time.Since(start).Round(time.Microsecond))

	// Rung 3: octree-approximated GB at increasing ε.
	for _, eps := range []float64{0.1, 0.5, 0.9} {
		params := gb.DefaultParams()
		params.EpsBorn = eps
		params.EpsEpol = eps
		s2, err := gb.NewSystem(mol, surf, params)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		res, err := s2.Run(gb.RunSpec{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GB octree ε = %.1f                  %12.2f   %8v\n",
			eps, res.Epol, time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("\neach rung trades a little fidelity for orders of magnitude in cost —")
	fmt.Println("the progression that motivates the paper (§I).")
}
