// Docking scan: score ligand placements against a receptor by the change
// in polarization energy — the drug-design workload the paper motivates
// (§I, §IV-C). Poses come from the dock package's generators; scoring
// runs in parallel on the work-stealing pool, and the best coarse pose is
// locally refined.
//
// Run with:
//
//	go run ./examples/docking
package main

import (
	"fmt"
	"log"

	"gbpolar/internal/dock"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

func main() {
	receptor := molecule.Exactly(molecule.Globule("receptor", 3000, 7), 3000, 7)
	ligand := molecule.Exactly(molecule.Globule("ligand", 200, 11), 200, 11)

	scorer, err := dock.NewScorer(receptor, ligand, gb.DefaultParams(), surface.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receptor Epol = %.1f kcal/mol, ligand Epol = %.1f kcal/mol\n\n",
		scorer.ReceptorEnergy(), scorer.LigandEnergy())

	pool := sched.New(8)
	defer pool.Close()

	// Coarse scan: 12 approach directions on a sphere, scored through the
	// §IV-C octree-reuse fast path (no per-pose rebuilds).
	coarse := scorer.SpherePoses(12, 2.0)
	scores, err := scorer.FastScoreAll(pool, coarse)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coarse scan, octree-reuse fast path (best 5):")
	for i, s := range scores[:5] {
		fmt.Printf("  %d. %-10s ΔEpol = %+8.2f kcal/mol\n", i+1, s.Pose.Label, s.DeltaEpol)
	}

	// Local refinement around the best coarse pose, re-scored with the
	// full per-pose rebuild (interface surface re-culled).
	refined, err := scorer.ScoreAll(pool, dock.Refine(scores[0].Pose, 10, 1.5, 0.4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefined around %s (best 3):\n", scores[0].Pose.Label)
	for i, s := range refined[:3] {
		clash := ""
		if s.Clash {
			clash = " (clash)"
		}
		fmt.Printf("  %d. %-20s ΔEpol = %+8.2f kcal/mol%s\n", i+1, s.Pose.Label, s.DeltaEpol, clash)
	}
	best := refined[0]
	if scores[0].DeltaEpol < best.DeltaEpol {
		best = scores[0]
	}
	fmt.Printf("\nbest pose: %s (ΔEpol = %+.2f kcal/mol)\n", best.Pose.Label, best.DeltaEpol)
}
