// Epsilon sweep: the paper's space-independent speed–accuracy tradeoff
// (§II): sweep the approximation parameters and watch error and work move
// in opposite directions while the octree memory stays constant.
//
// Run with:
//
//	go run ./examples/epsilon_sweep
package main

import (
	"fmt"
	"log"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func main() {
	mol := molecule.Exactly(molecule.Globule("sweep", 5000, 3), 5000, 3)
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Exact reference, computed once.
	ref, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	radii, _ := ref.NaiveBornRadiiR6()
	exact, exactOps := ref.NaiveEpol(radii)
	fmt.Printf("molecule %s: %d atoms; exact Epol = %.2f kcal/mol (%d pair evals)\n\n",
		mol.Name, mol.NumAtoms(), exact, exactOps)

	fmt.Println("  ε     Epol (kcal/mol)   error %   interactions   octree bytes")
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.2, 1.5} {
		params := gb.DefaultParams()
		params.EpsBorn = eps
		params.EpsEpol = eps
		sys, err := gb.NewSystem(mol, surf, params)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(gb.RunSpec{})
		if err != nil {
			log.Fatal(err)
		}
		// The octree itself is parameter-independent: same memory at
		// every ε (§II, the contrast with cutoff-sized nonbonded lists).
		treeBytes := sys.TA.MemoryBytes() + sys.TQ.MemoryBytes()
		fmt.Printf("%5.2f   %12.2f   %8.3f   %12d   %12d\n",
			eps, res.Epol, 100*math.Abs(res.Epol-exact)/math.Abs(exact),
			res.TotalOps(), treeBytes)
	}
	fmt.Println("\nerror grows with ε, work shrinks, octree memory is constant.")
}
