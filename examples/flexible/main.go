// Flexible molecules: the §II update-efficiency claim in action. When a
// few atoms move between conformations (a flexible side chain, an MD
// step), the dynamic octree repairs itself locally instead of being
// rebuilt — "octree is more space-efficient, update-efficient and
// cache-efficient compared to nblists" — and Freeze() hands the energy
// kernels the same flat, cache-friendly layout a fresh Build would.
//
// Run with:
//
//	go run ./examples/flexible
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/octree"
)

func main() {
	mol := molecule.Exactly(molecule.Globule("flexible", 30000, 13), 30000, 13)
	positions := mol.Positions()
	rng := rand.New(rand.NewSource(7))

	// Static build cost (what a rebuild-per-conformation strategy pays).
	start := time.Now()
	tree := octree.Build(positions, 8)
	buildCost := time.Since(start)
	fmt.Printf("molecule: %d atoms\n", mol.NumAtoms())
	fmt.Printf("fresh octree build: %v (%d nodes, %d KB)\n\n",
		buildCost.Round(time.Microsecond), tree.NumNodes(), tree.MemoryBytes()>>10)

	// Dynamic maintenance: move 1% of the atoms per "conformation".
	dyn := octree.NewDynamic(positions, 8)
	const conformations = 20
	moved := mol.NumAtoms() / 100
	start = time.Now()
	for c := 0; c < conformations; c++ {
		for k := 0; k < moved; k++ {
			i := int32(rng.Intn(mol.NumAtoms()))
			jitter := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.8)
			if err := dyn.Move(i, dyn.Position(i).Add(jitter)); err != nil {
				log.Fatal(err)
			}
		}
	}
	moveCost := time.Since(start)
	fmt.Printf("dynamic updates: %d conformations × %d moves in %v (%.2f µs/move)\n",
		conformations, moved, moveCost.Round(time.Microsecond),
		float64(moveCost.Microseconds())/float64(conformations*moved))

	// Lower back to the flat layout for the traversal kernels.
	start = time.Now()
	frozen := dyn.Freeze()
	freezeCost := time.Since(start)
	if err := frozen.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("freeze to flat layout: %v (%d nodes — tree stayed compact)\n\n",
		freezeCost.Round(time.Microsecond), frozen.NumNodes())

	perConf := moveCost/time.Duration(conformations) + freezeCost
	fmt.Printf("per-conformation cost: repair+freeze %v vs rebuild %v (%.1fx cheaper)\n",
		perConf.Round(time.Microsecond), buildCost.Round(time.Microsecond),
		float64(buildCost)/float64(perConf))

	// The nblist alternative: rebuilding the pair list each conformation.
	start = time.Now()
	pl, err := nblist.BuildPairList(dyn.Positions(), 12, 0)
	if err != nil {
		log.Fatal(err)
	}
	nblistCost := time.Since(start)
	fmt.Printf("\nnblist rebuild (12 Å cutoff): %v, %d KB — %dx the octree's memory\n",
		nblistCost.Round(time.Microsecond), pl.MemoryBytes()>>10,
		pl.MemoryBytes()/frozen.MemoryBytes())
}
