GO ?= go

.PHONY: build test check chaos-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# chaos-smoke replays seeded chaos schedules against the runtime and the
# self-healing drivers under a short deadline: any deadlock fails fast.
chaos-smoke:
	$(GO) test -timeout 120s -count=1 \
		-run 'TestChaosPlanNoDeadlock|TestChaosRecoverNeverDeadlocksOrLies|TestDistDataChaosNeverDeadlocks' \
		./internal/simmpi/ ./internal/gb/

check: chaos-smoke
	$(GO) vet ./...
	$(GO) test -race ./...
