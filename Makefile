GO ?= go

.PHONY: build test lint check chaos-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the project static-analysis suite (internal/analysis): SPMD
# collective symmetry, simmpi/fault error handling, kernel determinism,
# panic-freedom in libraries, float equality. Nonzero exit on findings.
lint:
	$(GO) run ./cmd/gblint ./...

# chaos-smoke replays seeded chaos schedules against the runtime and the
# self-healing drivers under a short deadline: any deadlock fails fast.
chaos-smoke:
	$(GO) test -timeout 120s -count=1 \
		-run 'TestChaosPlanNoDeadlock|TestChaosRecoverNeverDeadlocksOrLies|TestDistDataChaosNeverDeadlocks' \
		./internal/simmpi/ ./internal/gb/

check: chaos-smoke lint
	$(GO) vet ./...
	$(GO) test -race ./...
