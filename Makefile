GO ?= go

# Shared knobs for the bench trajectory: the gate compares like against
# like, so the head collection must use the same roster subset and
# repeat count as the committed BENCH_seed.json baseline.
BENCH_MAX_ATOMS ?= 2000
BENCH_REPEATS ?= 3

.PHONY: build test lint lint-json lint-self check check-race chaos-smoke trace-smoke serve-smoke soak soak-short bench-json bench-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the project static-analysis suite (internal/analysis), eight
# analyzers: per-function SPMD collective symmetry, simmpi/fault error
# handling, kernel determinism, panic-freedom in libraries, float
# equality, plus the interprocedural trio — collectivesym (cross-function
# collective divergence over the call graph), ctxflow (cancellation
# propagation), and hotalloc (per-iteration allocation in hot loops).
# Nonzero exit on findings. `make lint-json` emits the same findings as
# deterministic JSON for tooling.
lint:
	$(GO) run ./cmd/gblint ./...

lint-json:
	$(GO) run ./cmd/gblint -json ./...

# lint-self runs the analyzers over their own golden corpora in both
# polarities (must-find positives, must-not-find negative twins) plus
# the call-graph and loader unit tests: a silently broken analyzer
# fails here instead of passing vacuously over a clean module.
lint-self:
	$(GO) test -count=1 -run 'TestGolden|TestMalformedIgnore|TestCallGraph|TestLoad' ./internal/analysis/

# chaos-smoke replays seeded chaos schedules against the runtime and the
# self-healing drivers under a short deadline: any deadlock fails fast.
chaos-smoke:
	$(GO) test -timeout 120s -count=1 \
		-run 'TestChaosPlanNoDeadlock|TestChaosRecoverNeverDeadlocksOrLies|TestDistDataChaosNeverDeadlocks' \
		./internal/simmpi/ ./internal/gb/

# trace-smoke runs a small fault-free layout sweep with -trace-out and
# -metrics-out and asserts the Chrome trace parses with every rank
# timeline carrying all four algorithm phases, and the metrics file's
# histograms satisfy the exporter invariants. It then runs the
# cross-rank critical-path analyzer (gbtrace -json) over the same trace
# and validates the report schema: per-rank compute+comm+idle summing
# exactly to the wall, sorted keys, a contiguous monotone path.
trace-smoke:
	$(GO) run ./cmd/clustersim -atoms 2000 -nodes 1,2 -rpn 2 \
		-trace-out /tmp/gbpolar-trace.json \
		-metrics-out /tmp/gbpolar-metrics.json >/dev/null
	$(GO) run ./cmd/tracecheck \
		-phases octree-build,approx-integrals,push-integrals-to-atoms,approx-epol \
		-metrics /tmp/gbpolar-metrics.json \
		/tmp/gbpolar-trace.json
	$(GO) run ./cmd/gbtrace -json -out /tmp/gbpolar-critpath.json /tmp/gbpolar-trace.json
	$(GO) run ./cmd/tracecheck -critpath /tmp/gbpolar-critpath.json

# serve-smoke drives the real gbd binary end to end: good / malformed /
# over-quota requests, then SIGTERM with a job in flight, restart, and
# a byte-for-byte comparison of the resumed result against the
# uninterrupted run (the drain-checkpoint contract, at process level).
serve-smoke:
	$(GO) test -timeout 300s -count=1 -run TestServeSmoke ./cmd/gbd/

# soak runs the storage/resource fault-domain soak (cmd/gbsoak): the
# daemon core in-process over a seeded fault-injecting filesystem —
# ENOSPC, short/torn writes, fsync errors and lies, corrupt reads —
# combined with network chaos, mid-run kills, and power loss after
# drain, asserting no acked job is lost and disk-fault-only jobs finish
# bit-identical to a clean oracle. soak-short is the CI-sized plan
# (< 90s); a red run writes its report into soak-failure/ for artifact
# upload. Override the universe with SOAK_SEED.
SOAK_SEED ?= 1

soak:
	$(GO) run ./cmd/gbsoak -seed $(SOAK_SEED) -v -bundle soak-failure

soak-short:
	$(GO) run ./cmd/gbsoak -short -seed $(SOAK_SEED) -v -bundle soak-failure

# bench-json collects the head bench trajectory (roster × driver
# layouts) as schema-versioned JSON. BENCH_seed.json was produced the
# same way; see EXPERIMENTS.md for regenerating it after an intended
# performance or workload change.
bench-json:
	$(GO) run ./cmd/benchjson -label head -out BENCH_head.json \
		-max-atoms $(BENCH_MAX_ATOMS) -repeats $(BENCH_REPEATS)

# bench-gate is the perf regression gate: collect a fresh head
# trajectory and diff it against the committed seed baseline. Nonzero
# exit on any host-normalized kernel slowdown past the gate ratio or on
# deterministic ops/model/histogram drift.
bench-gate: bench-json
	$(GO) run ./cmd/benchdiff BENCH_seed.json BENCH_head.json

# check-race is the quick race pass: short mode skips the figure
# sweeps, PB grid solves, and calibration probes (the numerics they
# cover are single-goroutine anyway), leaving the concurrency-bearing
# suites — simmpi, gb drivers, supervise, obs — under the detector at
# a few minutes of wall time. `make check` still races everything.
check-race:
	$(GO) test -race -short -count=1 -timeout 1200s ./...

# The race detector multiplies the bench suite's runtime ~14x (past go
# test's 600s default package timeout on modest hardware), so the race
# pass carries an explicit generous timeout.
check: chaos-smoke lint lint-self trace-smoke serve-smoke soak-short
	$(GO) vet ./...
	$(GO) test -race -timeout 3600s ./...
