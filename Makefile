GO ?= go

.PHONY: build test lint check chaos-smoke trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the project static-analysis suite (internal/analysis): SPMD
# collective symmetry, simmpi/fault error handling, kernel determinism,
# panic-freedom in libraries, float equality. Nonzero exit on findings.
lint:
	$(GO) run ./cmd/gblint ./...

# chaos-smoke replays seeded chaos schedules against the runtime and the
# self-healing drivers under a short deadline: any deadlock fails fast.
chaos-smoke:
	$(GO) test -timeout 120s -count=1 \
		-run 'TestChaosPlanNoDeadlock|TestChaosRecoverNeverDeadlocksOrLies|TestDistDataChaosNeverDeadlocks' \
		./internal/simmpi/ ./internal/gb/

# trace-smoke runs a small fault-free layout sweep with -trace-out and
# asserts the Chrome trace parses and every rank timeline carries all
# four algorithm phases.
trace-smoke:
	$(GO) run ./cmd/clustersim -atoms 2000 -nodes 1,2 -rpn 2 \
		-trace-out /tmp/gbpolar-trace.json >/dev/null
	$(GO) run ./cmd/tracecheck \
		-phases octree-build,approx-integrals,push-integrals-to-atoms,approx-epol \
		/tmp/gbpolar-trace.json

# The race detector multiplies the bench suite's runtime ~14x (past go
# test's 600s default package timeout on modest hardware), so the race
# pass carries an explicit generous timeout.
check: chaos-smoke lint trace-smoke
	$(GO) vet ./...
	$(GO) test -race -timeout 3600s ./...
